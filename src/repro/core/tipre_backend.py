"""The paper's scheme behind the :class:`~repro.core.api.PreBackend` API.

``tipre/v1`` is the native backend: its envelope types *are* the
library's canonical containers (:class:`TypedCiphertext`,
:class:`ProxyKey`, :class:`ReEncryptedCiphertext`), which already carry
the routing metadata the gateway needs, and its serialization hooks are
the canonical container codecs — so wire messages and durable logs
written before the backend API existed stay byte-compatible.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.api import (
    TIPRE_SCHEME_ID,
    PreBackend,
    SchemeCapabilities,
    register_backend,
)
from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.keys import IbePrivateKey
from repro.ibe.kgc import KeyGenerationCenter, KgcRegistry
from repro.serialization.containers import (
    deserialize_proxy_key,
    deserialize_reencrypted,
    deserialize_typed_ciphertext,
    serialize_proxy_key,
    serialize_reencrypted,
    serialize_typed_ciphertext,
)

__all__ = ["KgcPartyMixin", "TipreBackend"]


class KgcPartyMixin:
    """Boneh--Franklin party bookkeeping shared by the KGC-based backends.

    Maintains one :class:`~repro.ibe.kgc.KgcRegistry` (a KGC per domain)
    and the extracted :class:`IbePrivateKey` per (domain, identity) —
    the party state both the paper's scheme and Green--Ateniese need.
    Expects ``self.group`` from the owning :class:`PreBackend`.
    """

    def _init_party_state(self) -> None:
        self._registry: KgcRegistry | None = None
        self._keys: dict[tuple[str, str], IbePrivateKey] = {}

    def setup(self, rng) -> None:
        self._registry = KgcRegistry(self.group, rng)
        self._keys = {}

    def _kgc(self, domain: str, rng=None) -> KeyGenerationCenter:
        if self._registry is None:
            if rng is None:
                raise ValueError("call setup() before using parties")
            self._registry = KgcRegistry(self.group, rng)
        if domain not in self._registry:
            return self._registry.create(domain)
        return self._registry.get(domain)

    def _key(self, domain: str, identity: str) -> IbePrivateKey:
        try:
            return self._keys[(domain, identity)]
        except KeyError:
            raise KeyError(
                "no party %r in domain %r; call create_party first" % (identity, domain)
            ) from None

    def create_party(self, domain: str, identity: str, rng) -> None:
        if (domain, identity) not in self._keys:
            self._keys[(domain, identity)] = self._kgc(domain, rng).extract(identity)

    def sample_message(self, rng):
        return self.group.random_gt(rng)


@register_backend
class TipreBackend(KgcPartyMixin, PreBackend):
    """Type-and-identity-based PRE (this paper) as a registered backend."""

    scheme_id: ClassVar[str] = TIPRE_SCHEME_ID
    display_name: ClassVar[str] = "type-and-identity (this paper)"
    capabilities: ClassVar[SchemeCapabilities] = SchemeCapabilities(
        unidirectional=True,
        non_interactive=True,
        collusion_safe=True,
        identity_based=True,
        type_granular=True,
        deterministic_reencrypt=True,
    )

    def __init__(self, group, scheme: TypeAndIdentityPre | None = None):
        super().__init__(group)
        self.scheme = scheme if scheme is not None else TypeAndIdentityPre(group)
        self._init_party_state()

    @classmethod
    def over(cls, scheme: TypeAndIdentityPre) -> "TipreBackend":
        """Wrap an existing scheme instance (the legacy gateway argument)."""
        return cls(scheme.group, scheme)

    # ------------------------------------------------------------ lifecycle

    def encrypt(
        self, domain: str, identity: str, message, type_label: str, rng
    ) -> TypedCiphertext:
        key = self._key(domain, identity)
        return self.scheme.encrypt(self._kgc(domain).params, key, message, type_label, rng)

    def rekey(
        self,
        delegator_domain: str,
        delegator: str,
        delegatee_domain: str,
        delegatee: str,
        type_label: str,
        rng,
    ) -> ProxyKey:
        return self.scheme.pextract(
            self._key(delegator_domain, delegator),
            delegatee,
            type_label,
            self._kgc(delegatee_domain).params,
            rng,
        )

    def reencrypt(self, ciphertext: TypedCiphertext, proxy_key: ProxyKey) -> ReEncryptedCiphertext:
        return self.scheme.preenc(ciphertext, proxy_key)

    def reencrypt_batch(
        self, ciphertexts: list[TypedCiphertext], proxy_key: ProxyKey
    ) -> list[ReEncryptedCiphertext]:
        return self.scheme.preenc_batch(ciphertexts, proxy_key)

    def decrypt_original(self, ciphertext: TypedCiphertext, domain: str, identity: str):
        return self.scheme.decrypt(ciphertext, self._key(domain, identity))

    def decrypt_reencrypted(self, ciphertext: ReEncryptedCiphertext, domain: str, identity: str):
        return self.scheme.decrypt_reencrypted(ciphertext, self._key(domain, identity))

    # -------------------------------------------------------- serialization

    def serialize_ciphertext(self, ciphertext: TypedCiphertext) -> bytes:
        return serialize_typed_ciphertext(self.group, ciphertext)

    def deserialize_ciphertext(self, blob: bytes) -> TypedCiphertext:
        return deserialize_typed_ciphertext(self.group, blob)

    def serialize_proxy_key(self, key: ProxyKey) -> bytes:
        return serialize_proxy_key(self.group, key)

    def deserialize_proxy_key(self, blob: bytes) -> ProxyKey:
        return deserialize_proxy_key(self.group, blob)

    def serialize_reencrypted(self, ciphertext: ReEncryptedCiphertext) -> bytes:
        return serialize_reencrypted(self.group, ciphertext)

    def deserialize_reencrypted(self, blob: bytes) -> ReEncryptedCiphertext:
        return deserialize_reencrypted(self.group, blob)
