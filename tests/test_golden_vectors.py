"""Golden wire-format vectors: guard against accidental format drift.

A fixed seeded scenario is serialized and its SHA-256 digests pinned.  If
any of these tests fail after a code change, the change broke
compatibility with previously stored ciphertexts and keys — either revert
it or bump the format version in ``repro.serialization.encoding``.

(The pins were produced by this very code at repository creation; they
are regression anchors, not external test vectors.)
"""

import hashlib

import pytest

from repro.core.scheme import TypeAndIdentityPre
from repro.hybrid.kem import HybridPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.serialization.containers import (
    serialize_hybrid,
    serialize_params,
    serialize_private_key,
    serialize_proxy_key,
    serialize_typed_ciphertext,
)


@pytest.fixture(scope="module")
def scenario():
    """The pinned scenario: everything derived from the seed 'golden-v1'."""
    group = PairingGroup.shared("TOY")
    rng = HmacDrbg("golden-v1")
    registry = KgcRegistry(group, rng)
    kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
    proxy_key = scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
    hybrid = HybridPre(group, scheme).encrypt(kgc1.params, alice, b"payload", "labs", rng)
    return {
        "group": group,
        "params": serialize_params(group, kgc1.params),
        "key": serialize_private_key(group, alice),
        "ciphertext": serialize_typed_ciphertext(group, ciphertext),
        "proxy_key": serialize_proxy_key(group, proxy_key),
        "hybrid": serialize_hybrid(group, hybrid),
    }


def _digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


# Pinned digests (seed 'golden-v1', TOY parameters, format tipre/v1).
GOLDEN = {
    "params": "96d469048287471e44a60016cdfb984ada9c72664191f06e13a7cc08642b3ef5",
    "key": "f8dcb375138ce2277ddabfaa29089c093cb5f91de011e1b3cfc2173fd7e801b3",
    "ciphertext": "d0a3a74073482805165691b5454e7f6b752115e5633f7c2e643f909681bdebc1",
    "proxy_key": "c2a0fb62fbb29b7ff65ab78a5615aeb8424ac34beeb7951ada1a8483cfc9eebb",
    "hybrid": "2f1e57aa1d41c09b1a8bebf4417ec64176169206591c3c39cd0d5468eb1da064",
}


@pytest.mark.parametrize("artifact", sorted(GOLDEN))
def test_golden_digest(scenario, artifact):
    assert _digest(scenario[artifact]) == GOLDEN[artifact], (
        "wire format of %r changed; bump the serialization version" % artifact
    )


def test_scenario_is_internally_consistent(scenario):
    """The pinned blobs still decode and decrypt."""
    from repro.serialization.containers import (
        deserialize_private_key,
        deserialize_typed_ciphertext,
    )

    group = scenario["group"]
    key = deserialize_private_key(group, scenario["key"])
    ciphertext = deserialize_typed_ciphertext(group, scenario["ciphertext"])
    scheme = TypeAndIdentityPre(group)
    # Decryption succeeds and yields a GT element of full order.
    recovered = scheme.decrypt(ciphertext, key)
    assert group.params.is_in_gt(recovered)
