"""The Blaze--Bleumer--Strauss (BBS, EUROCRYPT'98) atomic proxy scheme.

The first proxy re-encryption scheme: ElGamal-like, with re-encryption key
``pi_{a->b} = b / a (mod q)``.  Its two famous weaknesses are exactly what
the paper's related-work section recounts and what our property experiments
(E4) demonstrate executably:

* **bidirectional** — the same proxy key inverted converts ciphertexts from
  the delegatee back to the delegator;
* **interactive / not collusion-safe** — producing ``b/a`` requires both
  secrets (modelled here by a trusted dealer function), and proxy +
  delegatee together recover the delegator's secret ``a = b / pi``.

Ciphertexts are ``(m * g^k, (g^a)^k)``; re-encryption raises the second
component to ``pi``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.elgamal import ElGamalKeyPair
from repro.ec.curve import Point
from repro.math.drbg import RandomSource, system_random
from repro.math.ntheory import modinv
from repro.pairing.group import PairingGroup

__all__ = ["BbsProxyScheme", "BbsCiphertext"]


@dataclass(frozen=True)
class BbsCiphertext:
    """``(c1, c2) = (m * g^k, pk^k)``; ``owner`` names the decrypting party."""

    owner: str
    c1: Point
    c2: Point


class BbsProxyScheme:
    """BBS atomic proxy encryption over G1 (written additively)."""

    def __init__(self, group: PairingGroup):
        self.group = group

    def keygen(self, rng: RandomSource | None = None) -> ElGamalKeyPair:
        rng = rng or system_random()
        secret = self.group.random_scalar(rng)
        return ElGamalKeyPair(secret=secret, public=self.group.g1_mul(self.group.generator, secret))

    def encrypt(
        self, owner: str, keypair_public: Point, message: Point, rng: RandomSource | None = None
    ) -> BbsCiphertext:
        """Encrypt a G1 message to the key whose public part is ``keypair_public``."""
        rng = rng or system_random()
        k = self.group.random_scalar(rng)
        c1 = self.group.g1_add(message, self.group.g1_mul(self.group.generator, k))
        c2 = self.group.g1_mul(keypair_public, k)
        return BbsCiphertext(owner=owner, c1=c1, c2=c2)

    def decrypt(self, ciphertext: BbsCiphertext, secret: int) -> Point:
        """``m = c1 - c2 * (1/a)``."""
        a_inv = modinv(secret, self.group.order)
        return self.group.g1_add(
            ciphertext.c1, self.group.g1_neg(self.group.g1_mul(ciphertext.c2, a_inv))
        )

    def rekey(self, delegator_secret: int, delegatee_secret: int) -> int:
        """``pi = b / a``.  *Interactive*: needs both secrets (trusted dealer)."""
        return delegatee_secret * modinv(delegator_secret, self.group.order) % self.group.order

    def reencrypt(self, ciphertext: BbsCiphertext, pi: int, new_owner: str) -> BbsCiphertext:
        """``(c1, c2) -> (c1, c2 * pi)``: now decryptable with the delegatee key."""
        return BbsCiphertext(
            owner=new_owner, c1=ciphertext.c1, c2=self.group.g1_mul(ciphertext.c2, pi)
        )

    def invert_rekey(self, pi: int) -> int:
        """The bidirectionality attack surface: ``pi^{-1}`` re-encrypts backwards."""
        return modinv(pi, self.group.order)

    def collusion_recover_secret(self, pi: int, delegatee_secret: int) -> int:
        """Proxy + delegatee recover the delegator's secret: ``a = b / pi``."""
        return delegatee_secret * modinv(pi, self.group.order) % self.group.order
