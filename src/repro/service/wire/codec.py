"""JSON codec for the gateway's typed request/response surface.

Every dataclass :mod:`repro.service.gateway` exchanges is mapped to a
versioned wire message::

    {"wire": "repro-gateway/v1", "scheme": "<scheme id>",
     "type": "<kind>", "body": {...}}

The codec speaks for exactly one :class:`~repro.core.api.PreBackend`
(a bare :class:`~repro.pairing.group.PairingGroup` still selects the
paper's ``tipre/v1`` backend, the historical spelling).  Element
payloads (ciphertexts, proxy keys) travel as scheme-tagged envelopes —
``{"format": "<scheme id>", "group": ..., "kind": ..., "payload":
base64}`` — whose bytes come from the backend's serialization hooks;
for ``tipre/v1`` these are the canonical container envelopes of
:mod:`repro.serialization.containers`, byte-identical to the wire
format before the backend API existed.  Decoding is round-trip exact —
the dataclass that comes out of :func:`from_wire` compares equal to the
one that went into :func:`to_wire`, group elements included.

Anything malformed — broken JSON, a non-object, a wrong ``wire``
version, an unknown ``type``, a missing or mistyped field, a corrupt
element envelope, or *any scheme-id mismatch* (a message or element
produced under a different backend) — raises
:class:`~repro.service.gateway.InvalidRequestError`, so the server maps
every decode failure to the stable ``invalid-request`` error code.

:class:`~repro.service.gateway.GatewayError` instances are themselves a
message type (``error``), carrying ``{code, message}``; decoding one
reconstructs the matching taxonomy class, which is how
:class:`~repro.service.wire.client.RemoteGateway` re-raises server-side
failures under the exact exception types in-process callers catch.
"""

from __future__ import annotations

import base64
import json
import struct
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.api import PreBackend, resolve_backend
from repro.pairing.group import PairingGroup
from repro.phr.store import StoredRecord
from repro.serialization.encoding import EncodingError
from repro.service.cache import CacheStats
from repro.service.gateway import (
    DelegationNotFoundError,
    EntryMissingError,
    FetchRequest,
    FetchResponse,
    GatewayError,
    GrantRequest,
    GrantResponse,
    InvalidRequestError,
    RateLimitedError,
    ReEncryptRequest,
    ReEncryptResponse,
    RevokeRequest,
    RevokeResponse,
    ResizeReport,
    StoreUnavailableError,
)
from repro.service.auth.errors import (
    AuthenticationError,
    AuthRequiredError,
    BadSignatureError,
    ForbiddenError,
    ReplayedNonceError,
    StaleTimestampError,
    UnknownTenantError,
)
from repro.service.gateway import QuotaExceededError
from repro.service.metrics import LatencySummary, MetricsSnapshot
from repro.service.telemetry import HistogramSnapshot

__all__ = [
    "WIRE_FORMAT",
    "ERROR_TYPES",
    "GrantBatchRequest",
    "GrantBatchResponse",
    "ReEncryptBatchRequest",
    "ReEncryptBatchResponse",
    "ResizeRequest",
    "KeyExportRequest",
    "KeyExportResponse",
    "to_wire",
    "from_wire",
    "scheme_document",
    "neutral_error_to_wire",
    "MUX_PROTOCOL",
    "MAX_FRAME_BYTES",
    "FRAME_HEADER_LEN",
    "FrameProtocolError",
    "encode_frame",
    "decode_frame_payload",
    "frame_length",
    "mux_hello",
    "mux_request",
    "mux_response",
]

WIRE_FORMAT = "repro-gateway/v1"

# code -> taxonomy class, for reconstructing errors client-side.
ERROR_TYPES: dict[str, type] = {
    cls.code: cls
    for cls in (
        GatewayError,
        RateLimitedError,
        DelegationNotFoundError,
        EntryMissingError,
        InvalidRequestError,
        StoreUnavailableError,
        QuotaExceededError,
        AuthenticationError,
        AuthRequiredError,
        UnknownTenantError,
        BadSignatureError,
        StaleTimestampError,
        ReplayedNonceError,
        ForbiddenError,
    )
}


# ------------------------------------------------------- wire-only wrappers


@dataclass(frozen=True)
class GrantBatchRequest:
    """A sequence of :class:`GrantRequest` shipped as one message.

    The fleet resize migration re-homes whole chunks of proxy keys at
    once with this instead of paying one HTTP round-trip per key.
    """

    requests: tuple[GrantRequest, ...]


@dataclass(frozen=True)
class GrantBatchResponse:
    responses: tuple[GrantResponse, ...]


@dataclass(frozen=True)
class ReEncryptBatchRequest:
    """A sequence of :class:`ReEncryptRequest` shipped as one message."""

    requests: tuple[ReEncryptRequest, ...]


@dataclass(frozen=True)
class ReEncryptBatchResponse:
    responses: tuple[ReEncryptResponse, ...]


@dataclass(frozen=True)
class ResizeRequest:
    """Admin request: rebalance the fleet to ``shard_count`` shards.

    ``request_id`` is the client-generated idempotency id — a server
    holding the id in its dedup window replays the recorded response
    instead of running a second migration, which is what makes resize
    safely retryable after a connection drop.
    """

    tenant: str
    shard_count: int
    request_id: str | None = None


@dataclass(frozen=True)
class KeyExportRequest:
    """Admin request: enumerate every installed proxy key.

    The fleet tier's resize migration streams keys off a shard process
    with this; it is a read (replayable) and deliberately carries no
    filter — consistent-hash ownership is the caller's business.
    """

    tenant: str


@dataclass(frozen=True)
class KeyExportResponse:
    keys: tuple  # scheme-native proxy keys


# --------------------------------------------------------- scheme documents


def scheme_document(backend: PreBackend) -> dict:
    """The negotiation document one hosted scheme publishes.

    Served verbatim by ``GET /v1/scheme`` (and per entry by
    ``GET /v1/schemes`` on a multi-scheme server), and read back by
    :class:`~repro.service.wire.client.RemoteGateway` to pin a scheme
    before any element envelope crosses the wire.
    """
    return {
        "scheme": backend.scheme_id,
        "name": backend.display_name,
        "group": backend.group.params.name,
        "capabilities": backend.capabilities.as_dict(),
    }


def neutral_error_to_wire(error: GatewayError) -> str:
    """Encode an error without a scheme tag.

    Some rejections cannot name a scheme — an unknown endpoint on a
    server hosting several fleets, an unprefixed route that would be
    ambiguous.  :func:`from_wire` treats a missing ``scheme`` tag as
    neutral, so any client can still decode the taxonomy code.
    """
    return json.dumps(
        {
            "wire": WIRE_FORMAT,
            "type": "error",
            "body": {"code": error.code, "message": str(error)},
        },
        sort_keys=True,
    )


# ------------------------------------------------------------- field access


def _body_of(message: dict) -> dict:
    body = message.get("body")
    if not isinstance(body, dict):
        raise InvalidRequestError("wire message body must be a JSON object")
    return body


def _get(
    body: dict, name: str, kind: type | tuple[type, ...], optional: bool = False
) -> Any:
    value = body.get(name)
    if value is None:
        if optional:
            return None
        raise InvalidRequestError("missing wire field %r" % name)
    kinds = kind if isinstance(kind, tuple) else (kind,)
    # bool is an int subclass; a numeric field must still reject true/false.
    if not isinstance(value, kinds) or (bool not in kinds and isinstance(value, bool)):
        raise InvalidRequestError(
            "wire field %r must be %s"
            % (name, " or ".join(k.__name__ for k in kinds))
        )
    return value


def _element_to_json(backend: PreBackend, blob: bytes, kind: str) -> dict:
    """Scheme-tagged element envelope; for ``tipre/v1`` this is exactly
    the canonical ``to_json_envelope`` output the wire always used."""
    return {
        "format": backend.scheme_id,
        "group": backend.group.params.name,
        "kind": kind,
        "payload": base64.b64encode(blob).decode("ascii"),
    }


def _element_from_json(backend: PreBackend, body: dict, name: str) -> bytes:
    envelope = _get(body, name, dict)
    found = envelope.get("format")
    if found != backend.scheme_id:
        raise InvalidRequestError(
            "field %r carries scheme %r, this gateway speaks %r"
            % (name, found, backend.scheme_id)
        )
    if envelope.get("group") != backend.group.params.name:
        raise InvalidRequestError(
            "field %r is for group %r, not %r"
            % (name, envelope.get("group"), backend.group.params.name)
        )
    payload = envelope.get("payload")
    if not isinstance(payload, str):
        raise InvalidRequestError("field %r has no payload" % name)
    try:
        return base64.b64decode(payload, validate=True)
    except ValueError as error:
        raise InvalidRequestError("field %r: invalid payload" % name) from error


def _decode_element(decode: Callable, blob: bytes, name: str):
    try:
        return decode(blob)
    except (EncodingError, ValueError) as error:
        raise InvalidRequestError("field %r: %s" % (name, error)) from error


# ------------------------------------------------------- per-type encoders


def _enc_grant_request(backend: PreBackend, msg: GrantRequest) -> dict:
    return {
        "tenant": msg.tenant,
        "proxy_key": _element_to_json(
            backend, backend.serialize_proxy_key(msg.proxy_key), "proxy-key"
        ),
    }


def _dec_grant_request(backend: PreBackend, body: dict) -> GrantRequest:
    return GrantRequest(
        tenant=_get(body, "tenant", str),
        proxy_key=_decode_element(
            backend.deserialize_proxy_key,
            _element_from_json(backend, body, "proxy_key"),
            "proxy_key",
        ),
    )


def _enc_grant_response(backend: PreBackend, msg: GrantResponse) -> dict:
    return {"shard": msg.shard}


def _dec_grant_response(backend: PreBackend, body: dict) -> GrantResponse:
    return GrantResponse(shard=_get(body, "shard", str))


def _enc_grant_batch_request(backend: PreBackend, msg: GrantBatchRequest) -> dict:
    return {"requests": [_enc_grant_request(backend, r) for r in msg.requests]}


def _dec_grant_batch_request(backend: PreBackend, body: dict) -> GrantBatchRequest:
    items = _get(body, "requests", list)
    decoded = []
    for item in items:
        if not isinstance(item, dict):
            raise InvalidRequestError("batch items must be JSON objects")
        decoded.append(_dec_grant_request(backend, item))
    return GrantBatchRequest(requests=tuple(decoded))


def _enc_grant_batch_response(backend: PreBackend, msg: GrantBatchResponse) -> dict:
    return {"responses": [_enc_grant_response(backend, r) for r in msg.responses]}


def _dec_grant_batch_response(backend: PreBackend, body: dict) -> GrantBatchResponse:
    items = _get(body, "responses", list)
    decoded = []
    for item in items:
        if not isinstance(item, dict):
            raise InvalidRequestError("batch items must be JSON objects")
        decoded.append(_dec_grant_response(backend, item))
    return GrantBatchResponse(responses=tuple(decoded))


def _enc_revoke_request(backend: PreBackend, msg: RevokeRequest) -> dict:
    body = {
        "tenant": msg.tenant,
        "delegator_domain": msg.delegator_domain,
        "delegator": msg.delegator,
        "delegatee_domain": msg.delegatee_domain,
        "delegatee": msg.delegatee,
        "type_label": msg.type_label,
    }
    # Omitted when unset: a request without an idempotency id stays
    # byte-identical to what pre-dedup clients always sent.
    if msg.request_id is not None:
        body["request_id"] = msg.request_id
    return body


def _dec_revoke_request(backend: PreBackend, body: dict) -> RevokeRequest:
    return RevokeRequest(
        tenant=_get(body, "tenant", str),
        delegator_domain=_get(body, "delegator_domain", str),
        delegator=_get(body, "delegator", str),
        delegatee_domain=_get(body, "delegatee_domain", str),
        delegatee=_get(body, "delegatee", str),
        type_label=_get(body, "type_label", str),
        request_id=_get(body, "request_id", str, optional=True),
    )


def _enc_revoke_response(backend: PreBackend, msg: RevokeResponse) -> dict:
    return {"shard": msg.shard, "removed": msg.removed}


def _dec_revoke_response(backend: PreBackend, body: dict) -> RevokeResponse:
    return RevokeResponse(
        shard=_get(body, "shard", str), removed=_get(body, "removed", bool)
    )


def _enc_reencrypt_request(backend: PreBackend, msg: ReEncryptRequest) -> dict:
    return {
        "tenant": msg.tenant,
        "ciphertext": _element_to_json(
            backend, backend.serialize_ciphertext(msg.ciphertext), "typed-ciphertext"
        ),
        "delegatee_domain": msg.delegatee_domain,
        "delegatee": msg.delegatee,
    }


def _dec_reencrypt_request(backend: PreBackend, body: dict) -> ReEncryptRequest:
    return ReEncryptRequest(
        tenant=_get(body, "tenant", str),
        ciphertext=_decode_element(
            backend.deserialize_ciphertext,
            _element_from_json(backend, body, "ciphertext"),
            "ciphertext",
        ),
        delegatee_domain=_get(body, "delegatee_domain", str),
        delegatee=_get(body, "delegatee", str),
    )


def _enc_reencrypt_response(backend: PreBackend, msg: ReEncryptResponse) -> dict:
    return {
        "ciphertext": _element_to_json(
            backend, backend.serialize_reencrypted(msg.ciphertext), "reencrypted-ciphertext"
        ),
        "shard": msg.shard,
        "cache_hit": msg.cache_hit,
    }


def _dec_reencrypt_response(backend: PreBackend, body: dict) -> ReEncryptResponse:
    return ReEncryptResponse(
        ciphertext=_decode_element(
            backend.deserialize_reencrypted,
            _element_from_json(backend, body, "ciphertext"),
            "ciphertext",
        ),
        shard=_get(body, "shard", str),
        cache_hit=_get(body, "cache_hit", bool),
    )


def _enc_reencrypt_batch_request(backend: PreBackend, msg: ReEncryptBatchRequest) -> dict:
    return {"requests": [_enc_reencrypt_request(backend, r) for r in msg.requests]}


def _dec_reencrypt_batch_request(backend: PreBackend, body: dict) -> ReEncryptBatchRequest:
    items = _get(body, "requests", list)
    decoded = []
    for item in items:
        if not isinstance(item, dict):
            raise InvalidRequestError("batch items must be JSON objects")
        decoded.append(_dec_reencrypt_request(backend, item))
    return ReEncryptBatchRequest(requests=tuple(decoded))


def _enc_reencrypt_batch_response(backend: PreBackend, msg: ReEncryptBatchResponse) -> dict:
    return {"responses": [_enc_reencrypt_response(backend, r) for r in msg.responses]}


def _dec_reencrypt_batch_response(backend: PreBackend, body: dict) -> ReEncryptBatchResponse:
    items = _get(body, "responses", list)
    decoded = []
    for item in items:
        if not isinstance(item, dict):
            raise InvalidRequestError("batch items must be JSON objects")
        decoded.append(_dec_reencrypt_response(backend, item))
    return ReEncryptBatchResponse(responses=tuple(decoded))


def _enc_fetch_request(backend: PreBackend, msg: FetchRequest) -> dict:
    return {
        "tenant": msg.tenant,
        "patient": msg.patient,
        "entry_id": msg.entry_id,
        "category": msg.category,
    }


def _dec_fetch_request(backend: PreBackend, body: dict) -> FetchRequest:
    return FetchRequest(
        tenant=_get(body, "tenant", str),
        patient=_get(body, "patient", str),
        entry_id=_get(body, "entry_id", str, optional=True),
        category=_get(body, "category", str, optional=True),
    )


def _enc_fetch_response(backend: PreBackend, msg: FetchResponse) -> dict:
    return {
        "records": [
            {
                "patient": record.patient,
                "category": record.category,
                "entry_id": record.entry_id,
                "blob": base64.b64encode(record.blob).decode("ascii"),
            }
            for record in msg.records
        ]
    }


def _dec_fetch_response(backend: PreBackend, body: dict) -> FetchResponse:
    items = _get(body, "records", list)
    records = []
    for item in items:
        if not isinstance(item, dict):
            raise InvalidRequestError("records must be JSON objects")
        try:
            blob = base64.b64decode(_get(item, "blob", str), validate=True)
        except ValueError as error:
            raise InvalidRequestError("invalid record blob") from error
        records.append(
            StoredRecord(
                patient=_get(item, "patient", str),
                category=_get(item, "category", str),
                entry_id=_get(item, "entry_id", str),
                blob=blob,
            )
        )
    return FetchResponse(records=tuple(records))


def _enc_resize_request(backend: PreBackend, msg: ResizeRequest) -> dict:
    body = {"tenant": msg.tenant, "shard_count": msg.shard_count}
    if msg.request_id is not None:
        body["request_id"] = msg.request_id
    return body


def _dec_resize_request(backend: PreBackend, body: dict) -> ResizeRequest:
    return ResizeRequest(
        tenant=_get(body, "tenant", str),
        shard_count=_get(body, "shard_count", int),
        request_id=_get(body, "request_id", str, optional=True),
    )


def _enc_key_export_request(backend: PreBackend, msg: KeyExportRequest) -> dict:
    return {"tenant": msg.tenant}


def _dec_key_export_request(backend: PreBackend, body: dict) -> KeyExportRequest:
    return KeyExportRequest(tenant=_get(body, "tenant", str))


def _enc_key_export_response(backend: PreBackend, msg: KeyExportResponse) -> dict:
    return {
        "keys": [
            _element_to_json(backend, backend.serialize_proxy_key(key), "proxy-key")
            for key in msg.keys
        ]
    }


def _dec_key_export_response(backend: PreBackend, body: dict) -> KeyExportResponse:
    items = _get(body, "keys", list)
    keys = []
    for position, item in enumerate(items):
        if not isinstance(item, dict):
            raise InvalidRequestError("exported keys must be JSON objects")
        name = "keys[%d]" % position
        blob = _element_from_json(backend, {name: item}, name)
        keys.append(_decode_element(backend.deserialize_proxy_key, blob, name))
    return KeyExportResponse(keys=tuple(keys))


def _enc_resize_report(backend: PreBackend, msg: ResizeReport) -> dict:
    return {
        "old_shard_count": msg.old_shard_count,
        "new_shard_count": msg.new_shard_count,
        "keys_moved": msg.keys_moved,
        "shards_added": list(msg.shards_added),
        "shards_removed": list(msg.shards_removed),
        "elapsed_ms": msg.elapsed_ms,
    }


def _str_list(body: dict, name: str) -> tuple[str, ...]:
    items = _get(body, name, list)
    if not all(isinstance(item, str) for item in items):
        raise InvalidRequestError("wire field %r must be a list of strings" % name)
    return tuple(items)


def _dec_resize_report(backend: PreBackend, body: dict) -> ResizeReport:
    return ResizeReport(
        old_shard_count=_get(body, "old_shard_count", int),
        new_shard_count=_get(body, "new_shard_count", int),
        keys_moved=_get(body, "keys_moved", int),
        shards_added=_str_list(body, "shards_added"),
        shards_removed=_str_list(body, "shards_removed"),
        elapsed_ms=float(_get(body, "elapsed_ms", (int, float))),
    )


def _enc_latency(summary: LatencySummary) -> dict:
    return {
        "count": summary.count,
        "p50_ms": summary.p50_ms,
        "p90_ms": summary.p90_ms,
        "p99_ms": summary.p99_ms,
        "max_ms": summary.max_ms,
    }


def _dec_latency(body: dict) -> LatencySummary:
    return LatencySummary(
        count=_get(body, "count", int),
        p50_ms=float(_get(body, "p50_ms", (int, float))),
        p90_ms=float(_get(body, "p90_ms", (int, float))),
        p99_ms=float(_get(body, "p99_ms", (int, float))),
        max_ms=float(_get(body, "max_ms", (int, float))),
    )


def _enc_cache_stats(stats: CacheStats) -> dict:
    return {
        "name": stats.name,
        "size": stats.size,
        "capacity": stats.capacity,
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "invalidations": stats.invalidations,
    }


def _dec_cache_stats(body: dict) -> CacheStats:
    return CacheStats(
        name=_get(body, "name", str),
        size=_get(body, "size", int),
        capacity=_get(body, "capacity", int),
        hits=_get(body, "hits", int),
        misses=_get(body, "misses", int),
        evictions=_get(body, "evictions", int),
        invalidations=_get(body, "invalidations", int),
    )


def _enc_histogram(histogram: HistogramSnapshot) -> dict:
    return {
        "bounds": list(histogram.bounds),
        "counts": list(histogram.counts),
        "count": histogram.count,
        "sum": histogram.sum,
        "max": histogram.max_value,
    }


def _dec_histogram(body: dict) -> HistogramSnapshot:
    bounds = _get(body, "bounds", list)
    counts = _get(body, "counts", list)
    if not all(isinstance(b, (int, float)) and not isinstance(b, bool) for b in bounds):
        raise InvalidRequestError("histogram bounds must be numbers")
    if not all(isinstance(c, int) and not isinstance(c, bool) for c in counts):
        raise InvalidRequestError("histogram counts must be integers")
    if len(counts) != len(bounds) + 1:
        raise InvalidRequestError("histogram needs len(bounds) + 1 buckets")
    return HistogramSnapshot(
        bounds=tuple(float(b) for b in bounds),
        counts=tuple(counts),
        count=_get(body, "count", int),
        sum=float(_get(body, "sum", (int, float))),
        max_value=float(_get(body, "max", (int, float))),
    )


def _enc_outcomes(outcomes: dict) -> list:
    # (label, outcome) tuple keys are not JSON object keys; flatten to rows.
    return [
        [label, outcome, count]
        for (label, outcome), count in sorted(outcomes.items())
    ]


def _dec_outcomes(rows: list, what: str) -> dict:
    outcomes = {}
    for row in rows:
        if (
            not isinstance(row, list)
            or len(row) != 3
            or not isinstance(row[0], str)
            or not isinstance(row[1], str)
            or not isinstance(row[2], int)
            or isinstance(row[2], bool)
        ):
            raise InvalidRequestError("%s rows must be [label, outcome, count]" % what)
        outcomes[(row[0], row[1])] = row[2]
    return outcomes


def _enc_metrics_snapshot(backend: PreBackend, msg: MetricsSnapshot) -> dict:
    return {
        "requests_total": msg.requests_total,
        "served": msg.served,
        "rejected": msg.rejected,
        "rate_limited": msg.rate_limited,
        "elapsed_s": msg.elapsed_s,
        "shard_requests": dict(msg.shard_requests),
        "latency": {kind: _enc_latency(summary) for kind, summary in msg.latency.items()},
        "caches": {name: _enc_cache_stats(stats) for name, stats in msg.caches.items()},
        "resizes": msg.resizes,
        "keys_migrated": msg.keys_migrated,
        "histograms": {
            kind: _enc_histogram(histogram)
            for kind, histogram in msg.histograms.items()
        },
        "outcomes": _enc_outcomes(msg.outcomes),
        "tenant_outcomes": _enc_outcomes(msg.tenant_outcomes),
        "tenant_queue_ms": {
            tenant: _enc_histogram(histogram)
            for tenant, histogram in msg.tenant_queue_ms.items()
        },
        "auth_failures": dict(msg.auth_failures),
    }


def _dec_metrics_snapshot(backend: PreBackend, body: dict) -> MetricsSnapshot:
    shard_requests = _get(body, "shard_requests", dict)
    if not all(
        isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
        for k, v in shard_requests.items()
    ):
        raise InvalidRequestError("shard_requests must map shard -> int")
    latency = {}
    for kind, summary in _get(body, "latency", dict).items():
        if not isinstance(summary, dict):
            raise InvalidRequestError("latency summaries must be JSON objects")
        latency[kind] = _dec_latency(summary)
    caches = {}
    for name, stats in _get(body, "caches", dict).items():
        if not isinstance(stats, dict):
            raise InvalidRequestError("cache stats must be JSON objects")
        caches[name] = _dec_cache_stats(stats)
    # Telemetry fields are optional on decode: a pre-telemetry peer's
    # snapshot (no histograms/outcomes) still decodes, with empty maps.
    histograms = {}
    for kind, histogram in (_get(body, "histograms", dict, optional=True) or {}).items():
        if not isinstance(histogram, dict):
            raise InvalidRequestError("histograms must be JSON objects")
        histograms[kind] = _dec_histogram(histogram)
    outcomes = _dec_outcomes(
        _get(body, "outcomes", list, optional=True) or [], "outcomes"
    )
    tenant_outcomes = _dec_outcomes(
        _get(body, "tenant_outcomes", list, optional=True) or [], "tenant_outcomes"
    )
    tenant_queue_ms = {}
    for tenant, histogram in (
        _get(body, "tenant_queue_ms", dict, optional=True) or {}
    ).items():
        if not isinstance(histogram, dict):
            raise InvalidRequestError("tenant_queue_ms must map tenant -> histogram")
        tenant_queue_ms[tenant] = _dec_histogram(histogram)
    auth_failures = _get(body, "auth_failures", dict, optional=True) or {}
    if not all(
        isinstance(k, str) and isinstance(v, int) and not isinstance(v, bool)
        for k, v in auth_failures.items()
    ):
        raise InvalidRequestError("auth_failures must map code -> int")
    return MetricsSnapshot(
        requests_total=_get(body, "requests_total", int),
        served=_get(body, "served", int),
        rejected=_get(body, "rejected", int),
        rate_limited=_get(body, "rate_limited", int),
        elapsed_s=float(_get(body, "elapsed_s", (int, float))),
        shard_requests=dict(shard_requests),
        latency=latency,
        caches=caches,
        resizes=_get(body, "resizes", int),
        keys_migrated=_get(body, "keys_migrated", int),
        histograms=histograms,
        outcomes=outcomes,
        tenant_outcomes=tenant_outcomes,
        tenant_queue_ms=tenant_queue_ms,
        auth_failures=dict(auth_failures),
    )


def _enc_error(backend: PreBackend, error: GatewayError) -> dict:
    return {"code": error.code, "message": str(error)}


def _dec_error(backend: PreBackend, body: dict) -> GatewayError:
    code = _get(body, "code", str)
    message = _get(body, "message", str)
    return ERROR_TYPES.get(code, GatewayError)(message)


# --------------------------------------------------------------- dispatch

_CODECS: dict[type, tuple[str, Callable, Callable]] = {
    GrantRequest: ("grant-request", _enc_grant_request, _dec_grant_request),
    GrantResponse: ("grant-response", _enc_grant_response, _dec_grant_response),
    GrantBatchRequest: (
        "grant-batch-request",
        _enc_grant_batch_request,
        _dec_grant_batch_request,
    ),
    GrantBatchResponse: (
        "grant-batch-response",
        _enc_grant_batch_response,
        _dec_grant_batch_response,
    ),
    RevokeRequest: ("revoke-request", _enc_revoke_request, _dec_revoke_request),
    RevokeResponse: ("revoke-response", _enc_revoke_response, _dec_revoke_response),
    ReEncryptRequest: ("reencrypt-request", _enc_reencrypt_request, _dec_reencrypt_request),
    ReEncryptResponse: (
        "reencrypt-response",
        _enc_reencrypt_response,
        _dec_reencrypt_response,
    ),
    ReEncryptBatchRequest: (
        "reencrypt-batch-request",
        _enc_reencrypt_batch_request,
        _dec_reencrypt_batch_request,
    ),
    ReEncryptBatchResponse: (
        "reencrypt-batch-response",
        _enc_reencrypt_batch_response,
        _dec_reencrypt_batch_response,
    ),
    FetchRequest: ("fetch-request", _enc_fetch_request, _dec_fetch_request),
    FetchResponse: ("fetch-response", _enc_fetch_response, _dec_fetch_response),
    ResizeRequest: ("resize-request", _enc_resize_request, _dec_resize_request),
    ResizeReport: ("resize-report", _enc_resize_report, _dec_resize_report),
    KeyExportRequest: (
        "key-export-request",
        _enc_key_export_request,
        _dec_key_export_request,
    ),
    KeyExportResponse: (
        "key-export-response",
        _enc_key_export_response,
        _dec_key_export_response,
    ),
    MetricsSnapshot: ("metrics-snapshot", _enc_metrics_snapshot, _dec_metrics_snapshot),
}

_DECODERS: dict[str, Callable] = {kind: dec for kind, _enc, dec in _CODECS.values()}
_DECODERS["error"] = _dec_error


def to_wire(context: PreBackend | PairingGroup, message: object) -> str:
    """Encode one request/response dataclass (or GatewayError) to JSON.

    ``context`` selects the scheme backend whose serialization hooks and
    scheme id the message is produced under; a bare pairing group means
    the paper's ``tipre/v1`` backend.
    """
    backend = resolve_backend(context)
    if isinstance(message, GatewayError):
        kind, body = "error", _enc_error(backend, message)
    else:
        try:
            kind, encode, _dec = _CODECS[type(message)]
        except KeyError:
            raise TypeError("no wire codec for %r" % type(message).__name__) from None
        body = encode(backend, message)
    return json.dumps(
        {"wire": WIRE_FORMAT, "scheme": backend.scheme_id, "type": kind, "body": body},
        sort_keys=True,
    )


def from_wire(
    context: PreBackend | PairingGroup,
    text: str | bytes,
    expect: tuple[type, ...] | type | None = None,
):
    """Decode one wire message; reject anything malformed as invalid-request.

    A message carrying a ``scheme`` tag for a different backend is
    rejected outright (peers must agree on the scheme before elements
    can mean anything); a message without the tag is decoded against
    ``context``'s backend, whose element envelopes still enforce the
    scheme id wherever group elements appear.

    ``expect`` (a type or tuple of types) narrows what the caller will
    accept — a valid message of another kind (including an ``error``) is
    still rejected, so an endpoint cannot be fed a structurally-valid
    but wrong request.  Callers that need to read error bodies (the
    client unpacking a non-2xx response) pass no ``expect`` and get the
    reconstructed :class:`GatewayError` instance back to raise.
    """
    backend = resolve_backend(context)
    try:
        message = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise InvalidRequestError("malformed JSON: %s" % error) from error
    if not isinstance(message, dict):
        raise InvalidRequestError("wire message must be a JSON object")
    if message.get("wire") != WIRE_FORMAT:
        raise InvalidRequestError(
            "unsupported wire format %r (expected %r)"
            % (message.get("wire"), WIRE_FORMAT)
        )
    kind = message.get("type")
    scheme = message.get("scheme")
    # Error bodies are scheme-neutral (taxonomy code + prose): a client
    # must be able to read the server's rejection even when the scheme
    # mismatch *is* what is being rejected.
    if kind != "error" and scheme is not None and scheme != backend.scheme_id:
        raise InvalidRequestError(
            "message is for scheme %r, this gateway speaks %r"
            % (scheme, backend.scheme_id)
        )
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise InvalidRequestError("unknown wire message type %r" % kind)
    decoded = decoder(backend, _body_of(message))
    if expect is not None and not isinstance(decoded, expect):
        expected = expect if isinstance(expect, tuple) else (expect,)
        raise InvalidRequestError(
            "expected %s, got %r"
            % (" or ".join(cls.__name__ for cls in expected), kind)
        )
    return decoded


# ----------------------------------------------------------- mux framing
#
# The multiplexed wire (``mux://``) carries the exact same JSON documents
# as HTTP — a frame is a transport envelope, not a second codec.  Each
# frame is a 4-byte big-endian length prefix followed by a UTF-8 JSON
# payload; the first frame in each direction is a ``hello`` naming the
# protocol, every later client frame is a ``request`` carrying an
# integer ``id``, and the server answers each with a ``response`` tagged
# with the same id (in whatever order executions finish — that id
# correlation is what lets many requests share one socket).  The HTTP
# body travels inside the frame as a JSON *string*, so the bytes a
# client extracts are identical to what the threaded stack returns.
#
# The length prefix keeps its top byte zero (frames are capped well
# below 2**24), which doubles as the protocol sniff: no HTTP method
# starts with a NUL byte, so a server can serve both protocols on one
# port by looking at the first octet of a connection.

MUX_PROTOCOL = "repro-mux/v1"
FRAME_HEADER_LEN = 4
MAX_FRAME_BYTES = 16 * 1024 * 1024 - 1  # keeps the prefix's top byte 0x00


class FrameProtocolError(Exception):
    """The peer broke mux framing (bad prefix, oversize or non-JSON frame)."""


def encode_frame(document: dict) -> bytes:
    """One framed document: 4-byte big-endian length + compact JSON."""
    payload = json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameProtocolError(
            "frame payload of %d bytes exceeds the %d-byte cap"
            % (len(payload), MAX_FRAME_BYTES)
        )
    return struct.pack(">I", len(payload)) + payload


def frame_length(header: bytes) -> int:
    """Decode a frame's length prefix, enforcing the size cap."""
    if len(header) != FRAME_HEADER_LEN:
        raise FrameProtocolError("truncated frame header (%d bytes)" % len(header))
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise FrameProtocolError(
            "frame of %d bytes exceeds the %d-byte cap" % (length, MAX_FRAME_BYTES)
        )
    return length


def decode_frame_payload(payload: bytes) -> dict:
    """Parse one frame payload into its JSON document."""
    try:
        document = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise FrameProtocolError("malformed frame payload: %s" % error) from error
    if not isinstance(document, dict):
        raise FrameProtocolError("frame payload must be a JSON object")
    return document


def mux_hello(**extra) -> dict:
    """The connection-opening handshake document (both directions)."""
    document = {"mux": MUX_PROTOCOL, "type": "hello"}
    document.update(extra)
    return document


def mux_request(
    request_id: int,
    method: str,
    path: str,
    body: str | None = None,
    headers: dict | None = None,
) -> dict:
    """One in-flight request stream: the HTTP request, framed."""
    document = {
        "type": "request",
        "id": request_id,
        "method": method,
        "path": path,
        "body": body,
    }
    if headers:
        document["headers"] = dict(headers)
    return document


def mux_response(
    request_id: int,
    status: int,
    body: str,
    content_type: str = "application/json",
    trace: str | None = None,
) -> dict:
    """The server's answer to one request stream, correlated by id."""
    document = {
        "type": "response",
        "id": request_id,
        "status": status,
        "body": body,
        "content_type": content_type,
    }
    if trace is not None:
        document["trace"] = trace
    return document
