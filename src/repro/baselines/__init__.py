"""Baseline schemes from the paper's related-work comparison."""

from repro.baselines.afgh import AfghScheme
from repro.baselines.bb1 import Bb1Ibe
from repro.baselines.bbs import BbsProxyScheme
from repro.baselines.dodis_ivan import DodisIvanScheme
from repro.baselines.elgamal import ElGamal
from repro.baselines.green_ateniese import GreenAtenieseIbp1
from repro.baselines.interface import PROPERTY_NAMES, PreAdapter, all_adapters
from repro.baselines.matsuo import MatsuoStylePre
from repro.baselines.multi_keypair import MultiKeypairDelegation

__all__ = [
    "ElGamal",
    "BbsProxyScheme",
    "DodisIvanScheme",
    "AfghScheme",
    "GreenAtenieseIbp1",
    "Bb1Ibe",
    "MatsuoStylePre",
    "MultiKeypairDelegation",
    "PreAdapter",
    "all_adapters",
    "PROPERTY_NAMES",
]
