"""Tests for HKDF, the authenticated DEM, and hybrid PRE encryption."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hybrid.kdf import hkdf, hkdf_expand, hkdf_extract
from repro.hybrid.kem import HybridPre
from repro.hybrid.symmetric import (
    KEY_LEN,
    NONCE_LEN,
    TAG_LEN,
    AuthenticationError,
    open_sealed,
    seal,
)
from repro.math.drbg import HmacDrbg


class TestHkdf:
    def test_rfc5869_test_case_1(self):
        """RFC 5869 Appendix A.1 known-answer test."""
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk == bytes.fromhex(
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_composed(self):
        assert hkdf(b"ikm", b"info", 32, b"salt") == hkdf_expand(
            hkdf_extract(b"salt", b"ikm"), b"info", 32
        )

    def test_lengths(self):
        for n in (1, 16, 32, 33, 64, 255):
            assert len(hkdf(b"x", b"y", n)) == n

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 256 * 32)

    def test_info_separates(self):
        assert hkdf(b"k", b"a", 32) != hkdf(b"k", b"b", 32)


class TestSymmetricCipher:
    KEY = bytes(range(KEY_LEN))

    def test_round_trip(self, rng):
        sealed = seal(self.KEY, b"attack at dawn", rng=rng)
        assert open_sealed(self.KEY, sealed) == b"attack at dawn"

    def test_empty_plaintext(self, rng):
        assert open_sealed(self.KEY, seal(self.KEY, b"", rng=rng)) == b""

    def test_overhead_is_nonce_plus_tag(self, rng):
        sealed = seal(self.KEY, b"12345", rng=rng)
        assert len(sealed) == 5 + NONCE_LEN + TAG_LEN

    def test_wrong_key_rejected(self, rng):
        sealed = seal(self.KEY, b"secret", rng=rng)
        with pytest.raises(AuthenticationError):
            open_sealed(bytes(KEY_LEN), sealed)

    def test_tampered_ciphertext_rejected(self, rng):
        sealed = bytearray(seal(self.KEY, b"secret-data", rng=rng))
        sealed[NONCE_LEN] ^= 0x01
        with pytest.raises(AuthenticationError):
            open_sealed(self.KEY, bytes(sealed))

    def test_tampered_tag_rejected(self, rng):
        sealed = bytearray(seal(self.KEY, b"secret-data", rng=rng))
        sealed[-1] ^= 0x80
        with pytest.raises(AuthenticationError):
            open_sealed(self.KEY, bytes(sealed))

    def test_tampered_nonce_rejected(self, rng):
        sealed = bytearray(seal(self.KEY, b"secret-data", rng=rng))
        sealed[0] ^= 0xFF
        with pytest.raises(AuthenticationError):
            open_sealed(self.KEY, bytes(sealed))

    def test_associated_data_binding(self, rng):
        sealed = seal(self.KEY, b"payload", b"header-A", rng=rng)
        assert open_sealed(self.KEY, sealed, b"header-A") == b"payload"
        with pytest.raises(AuthenticationError):
            open_sealed(self.KEY, sealed, b"header-B")

    def test_truncated_blob_rejected(self):
        with pytest.raises(AuthenticationError):
            open_sealed(self.KEY, b"short")

    def test_bad_key_length(self, rng):
        with pytest.raises(ValueError):
            seal(b"short-key", b"x", rng=rng)

    def test_nonces_fresh(self, rng):
        s1 = seal(self.KEY, b"m", rng=rng)
        s2 = seal(self.KEY, b"m", rng=rng)
        assert s1[:NONCE_LEN] != s2[:NONCE_LEN]

    @given(st.binary(max_size=512), st.binary(max_size=64))
    def test_round_trip_property(self, plaintext, associated):
        rng = HmacDrbg(plaintext + b"|" + associated)
        sealed = seal(self.KEY, plaintext, associated, rng)
        assert open_sealed(self.KEY, sealed, associated) == plaintext


class TestHybridPre:
    @pytest.fixture()
    def setting(self, pre_setting, group):
        scheme, kgc1, kgc2, alice, bob = pre_setting
        return HybridPre(group, scheme), kgc1, kgc2, alice, bob

    def test_round_trip(self, setting, rng):
        hybrid, kgc1, _, alice, _ = setting
        payload = b"blood pressure 120/80, pulse 64"
        ciphertext = hybrid.encrypt(kgc1.params, alice, payload, "vitals", rng)
        assert hybrid.decrypt(ciphertext, alice) == payload

    def test_reencryption_round_trip(self, setting, rng):
        hybrid, kgc1, kgc2, alice, bob = setting
        payload = b"HbA1c = 6.1%"
        ciphertext = hybrid.encrypt(kgc1.params, alice, payload, "lab-results", rng)
        proxy_key = hybrid.scheme.pextract(alice, "bob", "lab-results", kgc2.params, rng)
        transformed = hybrid.reencrypt(ciphertext, proxy_key)
        assert hybrid.decrypt_reencrypted(transformed, bob) == payload
        assert transformed.dem == ciphertext.dem  # DEM untouched by the proxy

    def test_large_payload(self, setting, rng):
        hybrid, kgc1, _, alice, _ = setting
        payload = bytes(range(256)) * 64  # 16 KiB
        ciphertext = hybrid.encrypt(kgc1.params, alice, payload, "imaging", rng)
        assert hybrid.decrypt(ciphertext, alice) == payload

    def test_type_label_bound_into_dem(self, setting, rng):
        """Relabelling the KEM breaks DEM authentication, not just the KEM."""
        import dataclasses

        hybrid, kgc1, _, alice, _ = setting
        ciphertext = hybrid.encrypt(kgc1.params, alice, b"data", "t1", rng)
        relabelled = dataclasses.replace(
            ciphertext, kem=dataclasses.replace(ciphertext.kem, type_label="t2")
        )
        with pytest.raises(AuthenticationError):
            hybrid.decrypt(relabelled, alice)

    def test_wrong_type_proxy_key_fails_authentication(self, setting, rng):
        hybrid, kgc1, kgc2, alice, bob = setting
        ciphertext = hybrid.encrypt(kgc1.params, alice, b"secret", "t1", rng)
        wrong_key = hybrid.scheme.pextract(alice, "bob", "t2", kgc2.params, rng)
        mixed = hybrid.scheme.preenc(ciphertext.kem, wrong_key, unchecked=True)
        from repro.hybrid.kem import HybridReEncrypted

        with pytest.raises(AuthenticationError):
            hybrid.decrypt_reencrypted(
                HybridReEncrypted(kem=mixed, dem=ciphertext.dem), bob
            )

    def test_dem_keys_fresh_per_message(self, setting, rng):
        hybrid, kgc1, _, alice, _ = setting
        c1 = hybrid.encrypt(kgc1.params, alice, b"same", "t", rng)
        c2 = hybrid.encrypt(kgc1.params, alice, b"same", "t", rng)
        assert c1.dem != c2.dem
        assert c1.kem.c2 != c2.kem.c2
