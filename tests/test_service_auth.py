"""Tests for repro.service.auth: signing, credentials, policy, TLS, wire.

Three layers:

* unit — the HMAC canonicalization and verifier check order, the
  credential store's atomic reload/rotate, the replay window's bounds,
  and the per-tenant policy engine;
* loopback — a real :class:`GatewayHttpServer` with a credential store
  installed, driven through every negative path (unsigned, mis-signed,
  replayed nonce, stale timestamp, unknown tenant, role-forbidden op),
  each asserting the *exact* taxonomy code and the structured
  ``auth-failure`` event;
* TLS — wrapped loopback with a generated self-signed certificate,
  including the wrong-CA handshake failure and the end-to-end
  subprocess test of ``serve --http --tls-cert --tenant-config``.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import ssl
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.auth import (
    AUTH_HEADER,
    AuthRequiredError,
    BadSignatureError,
    ForbiddenError,
    PolicyEngine,
    ReplayWindow,
    ReplayedNonceError,
    RequestSigner,
    RequestVerifier,
    StaleTimestampError,
    TenantCredentialStore,
    UnknownTenantError,
    canonical_request,
    client_context,
    parse_auth_header,
    server_context,
    sign_request,
)
from repro.service.driver import DELEGATEE_DOMAIN, build_setting
from repro.service.gateway import (
    GrantRequest,
    QuotaExceededError,
    RateLimitedError,
    ReEncryptRequest,
)
from repro.service.telemetry import EventLog
from repro.service.wire import (
    GatewayHttpServer,
    RemoteGateway,
    ResizeRequest,
    WireTransportError,
    to_wire,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


# --------------------------------------------------------------------- unit


class _FakeClock:
    def __init__(self, now: float = 1_000_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def store(tmp_path) -> TenantCredentialStore:
    store = TenantCredentialStore.initialize(tmp_path / "tenants.json")
    store.add("clinic-a", secret="a" * 64)
    store.add("ops", secret="b" * 64, roles=("admin",))
    return store


class TestSigning:
    def test_sign_verify_round_trip(self, store):
        clock = _FakeClock()
        signer = RequestSigner("clinic-a", "a" * 64, clock=clock)
        verifier = RequestVerifier(store, clock=clock)
        header = signer.header("POST", "/v1/grant", b"{}")
        credential = verifier.verify("POST", "/v1/grant", b"{}", header)
        assert credential.tenant == "clinic-a"

    def test_canonical_request_covers_every_field(self):
        base = ("POST", "/v1/grant", b"{}", "123", "aa", "t")
        reference = canonical_request(*base)
        variants = [
            ("GET", "/v1/grant", b"{}", "123", "aa", "t"),
            ("POST", "/v1/revoke", b"{}", "123", "aa", "t"),
            ("POST", "/v1/grant", b"{x}", "123", "aa", "t"),
            ("POST", "/v1/grant", b"{}", "124", "aa", "t"),
            ("POST", "/v1/grant", b"{}", "123", "ab", "t"),
            ("POST", "/v1/grant", b"{}", "123", "aa", "u"),
        ]
        for variant in variants:
            assert canonical_request(*variant) != reference

    def test_fresh_nonce_per_attempt(self):
        signer = RequestSigner("t", "s", clock=_FakeClock())
        first = parse_auth_header(signer.header("POST", "/p", b""))
        second = parse_auth_header(signer.header("POST", "/p", b""))
        assert first["nonce"] != second["nonce"]

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "v2;tenant=t;ts=1;nonce=n;sig=s",
            "v1;tenant=t;ts=1;nonce=n",  # missing sig
            "v1;tenantt;ts=1;nonce=n;sig=s",  # field without '='
            "v1;tenant=t;ts=soon;nonce=n;sig=s",  # non-integer ts
        ],
    )
    def test_parse_rejects_malformed_headers(self, header):
        with pytest.raises(AuthRequiredError):
            parse_auth_header(header)

    def test_verifier_unknown_tenant(self, store):
        clock = _FakeClock()
        header = RequestSigner("ghost", "x", clock=clock).header("POST", "/p", b"")
        with pytest.raises(UnknownTenantError):
            RequestVerifier(store, clock=clock).verify("POST", "/p", b"", header)

    def test_verifier_stale_timestamp(self, store):
        clock = _FakeClock()
        header = RequestSigner("clinic-a", "a" * 64, clock=clock).header(
            "POST", "/p", b""
        )
        late = RequestVerifier(store, clock=_FakeClock(clock.now + 3600))
        with pytest.raises(StaleTimestampError):
            late.verify("POST", "/p", b"", header)

    def test_verifier_bad_signature(self, store):
        clock = _FakeClock()
        header = RequestSigner("clinic-a", "wrong-secret", clock=clock).header(
            "POST", "/p", b""
        )
        with pytest.raises(BadSignatureError):
            RequestVerifier(store, clock=clock).verify("POST", "/p", b"", header)

    def test_verifier_tampered_body(self, store):
        clock = _FakeClock()
        header = RequestSigner("clinic-a", "a" * 64, clock=clock).header(
            "POST", "/p", b"original"
        )
        with pytest.raises(BadSignatureError):
            RequestVerifier(store, clock=clock).verify("POST", "/p", b"tampered", header)

    def test_verifier_replay(self, store):
        clock = _FakeClock()
        verifier = RequestVerifier(store, clock=clock)
        header = RequestSigner("clinic-a", "a" * 64, clock=clock).header(
            "POST", "/p", b""
        )
        verifier.verify("POST", "/p", b"", header)
        with pytest.raises(ReplayedNonceError):
            verifier.verify("POST", "/p", b"", header)

    def test_failed_signature_does_not_consume_nonce(self, store):
        """Only *valid* signatures enter the replay window."""
        clock = _FakeClock()
        verifier = RequestVerifier(store, clock=clock)
        timestamp = str(int(clock.now))
        nonce = "f" * 32
        bad = sign_request("not-the-secret", "POST", "/p", b"", timestamp, nonce, "clinic-a")
        with pytest.raises(BadSignatureError):
            verifier.verify(
                "POST", "/p", b"",
                "v1;tenant=clinic-a;ts=%s;nonce=%s;sig=%s" % (timestamp, nonce, bad),
            )
        good = sign_request("a" * 64, "POST", "/p", b"", timestamp, nonce, "clinic-a")
        credential = verifier.verify(
            "POST", "/p", b"",
            "v1;tenant=clinic-a;ts=%s;nonce=%s;sig=%s" % (timestamp, nonce, good),
        )
        assert credential.tenant == "clinic-a"


class TestReplayWindow:
    def test_ttl_expiry_frees_the_nonce(self):
        clock = _FakeClock()
        window = ReplayWindow(ttl_s=10.0, clock=clock)
        assert window.check_and_record("t", "n1")
        assert not window.check_and_record("t", "n1")
        clock.now += 11.0
        assert window.check_and_record("t", "n1")

    def test_capacity_bound_evicts_oldest(self):
        window = ReplayWindow(capacity=2, ttl_s=1e9, clock=_FakeClock())
        assert window.check_and_record("t", "n1")
        assert window.check_and_record("t", "n2")
        assert window.check_and_record("t", "n3")
        assert len(window) == 2
        # n1 was evicted, so (only) it is acceptable again.
        assert window.check_and_record("t", "n1")
        assert not window.check_and_record("t", "n3")

    def test_tenants_do_not_share_nonces(self):
        window = ReplayWindow(clock=_FakeClock())
        assert window.check_and_record("t1", "n")
        assert window.check_and_record("t2", "n")


class TestCredentialStore:
    def test_reload_picks_up_external_edits(self, tmp_path):
        path = tmp_path / "tenants.json"
        writer = TenantCredentialStore.initialize(path)
        reader = TenantCredentialStore(path)
        assert reader.lookup("late") is None
        writer.add("late", secret="s")
        os.utime(path, (time.time() + 2, time.time() + 2))
        assert reader.lookup("late").secret == "s"

    def test_corrupt_rewrite_keeps_last_good_snapshot(self, tmp_path):
        path = tmp_path / "tenants.json"
        writer = TenantCredentialStore.initialize(path)
        writer.add("kept", secret="s")
        reader = TenantCredentialStore(path)
        assert reader.lookup("kept") is not None
        path.write_text("{ not json")
        os.utime(path, (time.time() + 2, time.time() + 2))
        assert reader.lookup("kept").secret == "s"

    def test_rotate_preserves_roles_and_limits(self, tmp_path):
        store = TenantCredentialStore.initialize(tmp_path / "t.json")
        store.add("t", secret="old", roles=("admin",), rate_per_s=5.0, quota=100)
        rotated = store.rotate("t")
        assert rotated.secret != "old"
        assert rotated.roles == ("admin",)
        assert rotated.rate_per_s == 5.0
        assert rotated.quota == 100

    def test_initialize_refuses_to_clobber(self, tmp_path):
        path = tmp_path / "t.json"
        TenantCredentialStore.initialize(path)
        with pytest.raises(FileExistsError):
            TenantCredentialStore.initialize(path)

    def test_roles_gate_operations(self, store):
        client = store.lookup("clinic-a")
        admin = store.lookup("ops")
        assert store.allows(client, "reencrypt")
        assert not store.allows(client, "resize")
        assert store.allows(admin, "resize")
        assert store.allows(admin, "export")


class TestPolicyEngine:
    def test_no_limits_falls_through(self, store):
        engine = PolicyEngine(store, clock=_FakeClock())
        assert engine.admit("clinic-a", "grant") is False
        assert engine.admit("anonymous", "grant") is False

    def test_rate_limit_enforced(self, tmp_path):
        store = TenantCredentialStore.initialize(tmp_path / "t.json")
        store.add("slow", secret="s", rate_per_s=2.0, burst=2.0)
        clock = _FakeClock()
        engine = PolicyEngine(store, clock=clock)
        assert engine.admit("slow", "reencrypt") is True
        assert engine.admit("slow", "reencrypt") is True
        with pytest.raises(RateLimitedError):
            engine.admit("slow", "reencrypt")
        clock.now += 1.0  # refill 2/s for one second
        assert engine.admit("slow", "reencrypt") is True

    def test_quota_exhaustion(self, tmp_path):
        store = TenantCredentialStore.initialize(tmp_path / "t.json")
        store.add("metered", secret="s", quota=2)
        engine = PolicyEngine(store, clock=_FakeClock())
        assert engine.admit("metered", "grant") is True
        assert engine.admit("metered", "grant") is True
        with pytest.raises(QuotaExceededError):
            engine.admit("metered", "grant")
        assert engine.quota_spent("metered") == 2


# ----------------------------------------------------------------- loopback


@pytest.fixture()
def auth_loopback(tmp_path):
    """A live authenticated HTTP server plus credentials for two tenants."""
    store = TenantCredentialStore.initialize(tmp_path / "tenants.json")
    store.add("clinic-a", secret="a" * 64)
    store.add("ops", secret="b" * 64, roles=("admin",))
    setting = build_setting(
        group_name="TOY",
        shard_count=2,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed="auth-loopback",
    )
    events = EventLog()
    server = GatewayHttpServer(
        setting.gateway,
        setting.group,
        event_log=events,
        auth=RequestVerifier(store),
    )
    with server:
        yield setting, server, events
    setting.gateway.close()


def _reencrypt_request(setting) -> ReEncryptRequest:
    (patient, _type_label), entries = sorted(setting.pool.items())[0]
    ciphertext, _message = entries[0]
    return ReEncryptRequest(
        tenant=patient,
        ciphertext=ciphertext,
        delegatee_domain=DELEGATEE_DOMAIN,
        delegatee=setting.delegatees[0],
    )


def _raw_post(server, path: str, body: bytes, header: str | None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        headers = {"Content-Type": "application/json"}
        if header is not None:
            headers[AUTH_HEADER] = header
        conn.request("POST", path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def _auth_failure_events(events: EventLog) -> list[dict]:
    return [event for event in events.tail() if event["kind"] == "auth-failure"]


class TestWireNegativePaths:
    def test_signed_client_succeeds_and_stamps_tenant(self, auth_loopback):
        setting, server, _events = auth_loopback
        client = RemoteGateway(
            server.url, setting.group, tenant="clinic-a", secret="a" * 64
        )
        response = client.reencrypt(_reencrypt_request(setting))
        assert response.shard
        # Quotas/metrics/audit attribute to the *authenticated* tenant,
        # not the body's self-declared one.
        snapshot = client.snapshot()
        assert any(tenant == "clinic-a" for tenant, _ in snapshot.tenant_outcomes)
        client.close()

    def test_unsigned_request_rejected(self, auth_loopback):
        setting, server, events = auth_loopback
        client = RemoteGateway(server.url, setting.group)
        with pytest.raises(AuthRequiredError):
            client.reencrypt(_reencrypt_request(setting))
        client.close()
        assert _auth_failure_events(events)[-1]["code"] == "auth-required"

    def test_bad_signature_rejected(self, auth_loopback):
        setting, server, events = auth_loopback
        client = RemoteGateway(
            server.url, setting.group, tenant="clinic-a", secret="not-the-secret"
        )
        with pytest.raises(BadSignatureError):
            client.reencrypt(_reencrypt_request(setting))
        client.close()
        event = _auth_failure_events(events)[-1]
        assert event["code"] == "auth-bad-signature"
        assert event["tenant"] == "clinic-a"

    def test_unknown_tenant_rejected(self, auth_loopback):
        setting, server, events = auth_loopback
        client = RemoteGateway(
            server.url, setting.group, tenant="ghost", secret="s"
        )
        with pytest.raises(UnknownTenantError):
            client.reencrypt(_reencrypt_request(setting))
        client.close()
        assert _auth_failure_events(events)[-1]["code"] == "auth-unknown-tenant"

    def test_replayed_nonce_rejected(self, auth_loopback):
        setting, server, events = auth_loopback
        body = to_wire(setting.group, _reencrypt_request(setting)).encode("utf-8")
        header = RequestSigner("clinic-a", "a" * 64).header("POST", "/v1/reencrypt", body)
        status, _ = _raw_post(server, "/v1/reencrypt", body, header)
        assert status == 200
        status, document = _raw_post(server, "/v1/reencrypt", body, header)
        assert status == 401
        assert document["body"]["code"] == "auth-replay"
        assert _auth_failure_events(events)[-1]["code"] == "auth-replay"

    def test_stale_timestamp_rejected(self, auth_loopback):
        setting, server, events = auth_loopback
        body = to_wire(setting.group, _reencrypt_request(setting)).encode("utf-8")
        past = lambda: time.time() - 3600  # noqa: E731
        header = RequestSigner("clinic-a", "a" * 64, clock=past).header(
            "POST", "/v1/reencrypt", body
        )
        status, document = _raw_post(server, "/v1/reencrypt", body, header)
        assert status == 401
        assert document["body"]["code"] == "auth-stale-timestamp"
        assert _auth_failure_events(events)[-1]["code"] == "auth-stale-timestamp"

    def test_role_forbidden_resize_as_non_admin(self, auth_loopback):
        setting, server, events = auth_loopback
        client = RemoteGateway(
            server.url, setting.group, tenant="clinic-a", secret="a" * 64
        )
        with pytest.raises(ForbiddenError):
            client.resize(3)
        client.close()
        event = _auth_failure_events(events)[-1]
        assert event["code"] == "auth-forbidden"
        assert event["op"] == "resize"

    def test_admin_role_may_resize(self, auth_loopback):
        setting, server, _events = auth_loopback
        client = RemoteGateway(
            server.url, setting.group, tenant="ops", secret="b" * 64
        )
        report = client.resize(3)
        assert report.new_shard_count == 3
        client.close()

    def test_forbidden_maps_to_http_403(self, auth_loopback):
        setting, server, _events = auth_loopback
        # clinic-a may not resize: send the signed resize body directly.
        body = to_wire(
            setting.group,
            ResizeRequest(tenant="clinic-a", shard_count=2, request_id="ff" * 16),
        ).encode("utf-8")
        header = RequestSigner("clinic-a", "a" * 64).header("POST", "/v1/resize", body)
        status, document = _raw_post(server, "/v1/resize", body, header)
        assert status == 403
        assert document["body"]["code"] == "auth-forbidden"

    def test_auth_failures_counted_into_rejected(self, auth_loopback):
        setting, server, _events = auth_loopback
        before = setting.gateway.metrics.snapshot()
        client = RemoteGateway(server.url, setting.group)
        with pytest.raises(AuthRequiredError):
            client.reencrypt(_reencrypt_request(setting))
        client.close()
        after = setting.gateway.metrics.snapshot()
        assert after.rejected == before.rejected + 1
        assert after.requests_total == before.requests_total + 1
        assert after.auth_failures.get("auth-required", 0) >= 1
        # The stress-tested invariant holds with auth failures counted in.
        assert after.requests_total == after.served + after.rejected + after.rate_limited


class TestPerTenantPolicyOverWire:
    def test_tenant_rate_limit_and_max_batch(self, tmp_path):
        store = TenantCredentialStore.initialize(tmp_path / "tenants.json")
        store.add("throttled", secret="t" * 64, rate_per_s=3.0, burst=3.0, max_batch=2)
        setting = build_setting(
            group_name="TOY",
            shard_count=2,
            n_patients=2,
            n_delegatees=2,
            n_types=2,
            ciphertexts_per_pair=1,
            seed="auth-policy",
        )
        setting.gateway.policy = PolicyEngine(store)
        server = GatewayHttpServer(
            setting.gateway, setting.group, auth=RequestVerifier(store)
        )
        with server:
            client = RemoteGateway(
                server.url, setting.group, tenant="throttled", secret="t" * 64
            )
            request = _reencrypt_request(setting)
            with pytest.raises(RateLimitedError):
                for _ in range(10):
                    client.reencrypt(request)
            with pytest.raises(Exception) as excinfo:
                client.reencrypt_batch([request] * 3)
            assert getattr(excinfo.value, "code", None) == "invalid-request"
            client.close()
        setting.gateway.close()

    def test_tenant_quota_maps_to_wire_code(self, tmp_path):
        store = TenantCredentialStore.initialize(tmp_path / "tenants.json")
        store.add("metered", secret="m" * 64, quota=2)
        setting = build_setting(
            group_name="TOY",
            shard_count=2,
            n_patients=1,
            n_delegatees=1,
            n_types=1,
            ciphertexts_per_pair=1,
            seed="auth-quota",
        )
        setting.gateway.policy = PolicyEngine(store)
        server = GatewayHttpServer(
            setting.gateway, setting.group, auth=RequestVerifier(store)
        )
        with server:
            client = RemoteGateway(
                server.url, setting.group, tenant="metered", secret="m" * 64
            )
            request = _reencrypt_request(setting)
            client.reencrypt(request)
            client.reencrypt(request)
            with pytest.raises(QuotaExceededError):
                client.reencrypt(request)
            client.close()
        setting.gateway.close()


# ---------------------------------------------------------------------- TLS


@pytest.fixture(scope="module")
def dev_cert(tmp_path_factory):
    out = tmp_path_factory.mktemp("tls")
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import gen_dev_cert
    finally:
        sys.path.pop(0)
    return gen_dev_cert.generate(out)


@pytest.fixture()
def tls_loopback(dev_cert):
    cert_path, key_path = dev_cert
    setting = build_setting(
        group_name="TOY",
        shard_count=2,
        n_patients=1,
        n_delegatees=1,
        n_types=1,
        ciphertexts_per_pair=1,
        seed="tls-loopback",
    )
    server = GatewayHttpServer(
        setting.gateway,
        setting.group,
        tls=server_context(str(cert_path), str(key_path)),
    )
    with server:
        yield setting, server, cert_path
    setting.gateway.close()


class TestTls:
    def test_https_round_trip_with_pinned_ca(self, tls_loopback):
        setting, server, cert_path = tls_loopback
        assert server.url.startswith("https://")
        client = RemoteGateway(server.url, setting.group, tls_ca=str(cert_path))
        response = client.reencrypt(_reencrypt_request(setting))
        assert response.shard
        client.close()

    def test_wrong_ca_handshake_fails_clean(self, tls_loopback, tmp_path):
        setting, server, _cert_path = tls_loopback
        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import gen_dev_cert
        finally:
            sys.path.pop(0)
        other_cert, _other_key = gen_dev_cert.generate(tmp_path / "other")
        client = RemoteGateway(server.url, setting.group, tls_ca=str(other_cert))
        with pytest.raises(WireTransportError):
            client.reencrypt(_reencrypt_request(setting))
        client.close()

    def test_failed_handshake_does_not_kill_the_server(self, tls_loopback, tmp_path):
        setting, server, cert_path = tls_loopback
        raw = ssl.create_default_context()
        # An unpinned client aborts its handshake on the self-signed cert...
        bad = RemoteGateway(server.url, setting.group)
        with pytest.raises(WireTransportError):
            bad.scheme_info()
        bad.close()
        assert raw is not None
        # ...and the server keeps serving pinned clients afterwards.
        good = RemoteGateway(server.url, setting.group, tls_ca=str(cert_path))
        assert good.scheme_info()["group"] == "TOY"
        good.close()

    def test_client_context_verifies_by_default(self):
        context = client_context()
        assert context.verify_mode == ssl.CERT_REQUIRED
        assert context.check_hostname


# -------------------------------------------------------------- trace sampling


class TestTraceSampling:
    def test_zero_fraction_sends_no_trace_header(self, auth_loopback):
        setting, server, _events = auth_loopback
        client = RemoteGateway(
            server.url,
            setting.group,
            tenant="clinic-a",
            secret="a" * 64,
            trace_requests=0.0,
        )
        client.reencrypt(_reencrypt_request(setting))
        assert client.last_trace is None
        assert client.last_trace_echo is None
        client.close()

    def test_fractional_sampling_is_deterministic(self, auth_loopback):
        setting, server, _events = auth_loopback
        client = RemoteGateway(
            server.url,
            setting.group,
            tenant="clinic-a",
            secret="a" * 64,
            trace_requests=0.5,
        )
        request = _reencrypt_request(setting)
        traced = 0
        for _ in range(20):
            client.last_trace = None
            client.reencrypt(request)
            if client.last_trace is not None:
                traced += 1
        # Seeded RNG: the count is reproducible and strictly partial.
        assert 0 < traced < 20
        client.close()

    def test_invalid_fraction_rejected(self, auth_loopback):
        setting, server, _events = auth_loopback
        with pytest.raises(ValueError):
            RemoteGateway(server.url, setting.group, trace_requests=1.5)

    def test_metrics_count_unsampled_requests(self, auth_loopback):
        setting, server, _events = auth_loopback
        before = setting.gateway.metrics.snapshot().requests_total
        client = RemoteGateway(
            server.url,
            setting.group,
            tenant="clinic-a",
            secret="a" * 64,
            trace_requests=0.0,
        )
        client.reencrypt(_reencrypt_request(setting))
        client.close()
        assert setting.gateway.metrics.snapshot().requests_total == before + 1


# ----------------------------------------------------------- end-to-end CLI


class TestServeTlsEndToEnd:
    def test_serve_with_tls_and_tenant_config(self, dev_cert, tmp_path):
        """The full stack: subprocess server, TLS, signed requests.

        The signed+TLS transformation must be *bit-identical* to the
        plaintext anonymous one (auth wraps the wire, never the math),
        and unsigned/mis-signed/replayed requests must fail with their
        stable codes.
        """
        cert_path, key_path = dev_cert
        config = tmp_path / "tenants.json"
        store = TenantCredentialStore.initialize(config)
        store.add("clinic-a", secret="a" * 64)

        setting = build_setting(
            group_name="TOY",
            shard_count=2,
            n_patients=1,
            n_delegatees=1,
            n_types=1,
            ciphertexts_per_pair=1,
            seed="e2e-tls",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--http",
                "0",
                "--group",
                "TOY",
                "--shards",
                "2",
                "--tls-cert",
                str(cert_path),
                "--tls-key",
                str(key_path),
                "--tenant-config",
                str(config),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            url = None
            deadline = time.time() + 60
            while time.time() < deadline:
                line = process.stdout.readline()
                if not line:
                    break
                if "listening on" in line:
                    url = line.split("listening on ")[1].split()[0]
                    break
            assert url and url.startswith("https://"), "server did not start"

            # Anonymous plaintext twin for the bit-identical comparison.
            # build_setting already granted the local gateway; the remote
            # server starts empty, so replay its keys over the wire.
            anon_server = GatewayHttpServer(setting.gateway, setting.group)
            request = _reencrypt_request(setting)
            grant_requests = [
                GrantRequest(tenant="e2e", proxy_key=key)
                for key in setting.gateway.list_keys()
            ]
            with anon_server:
                anon = RemoteGateway(anon_server.url, setting.group)
                plain_response = anon.reencrypt(request)
                anon.close()

            secure = RemoteGateway(
                url,
                setting.group,
                tenant="clinic-a",
                secret="a" * 64,
                tls_ca=str(cert_path),
            )
            secure.grant_batch(grant_requests)
            tls_response = secure.reencrypt(request)
            assert tls_response.ciphertext == plain_response.ciphertext

            # Unsigned and mis-signed: stable codes over the same wire.
            unsigned = RemoteGateway(url, setting.group, tls_ca=str(cert_path))
            with pytest.raises(AuthRequiredError):
                unsigned.reencrypt(request)
            unsigned.close()
            mis_signed = RemoteGateway(
                url,
                setting.group,
                tenant="clinic-a",
                secret="wrong",
                tls_ca=str(cert_path),
            )
            with pytest.raises(BadSignatureError):
                mis_signed.reencrypt(request)
            mis_signed.close()

            # Replay: same signed header POSTed twice over TLS.
            body = to_wire(setting.group, request).encode("utf-8")
            header = RequestSigner("clinic-a", "a" * 64).header(
                "POST", "/v1/reencrypt", body
            )
            host, port = url[len("https://"):].split(":")
            context = client_context(str(cert_path))
            for expected_status, expected_code in ((200, None), (401, "auth-replay")):
                conn = http.client.HTTPSConnection(
                    host, int(port), timeout=10, context=context
                )
                conn.request(
                    "POST",
                    "/v1/reencrypt",
                    body=body,
                    headers={"Content-Type": "application/json", AUTH_HEADER: header},
                )
                response = conn.getresponse()
                document = json.loads(response.read().decode("utf-8"))
                conn.close()
                assert response.status == expected_status
                if expected_code is not None:
                    assert document["body"]["code"] == expected_code
            secure.close()
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            setting.gateway.close()
