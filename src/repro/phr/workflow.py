"""End-to-end orchestration of the fine-grained PHR disclosure scheme.

:class:`PhrSystem` wires together every piece the paper's Section 5
describes: a patients' KGC, per-role requester KGCs, one
:class:`~repro.phr.actors.CategoryProxy` per PHR category (the paper's
"for each type of PHR, Alice finds a proxy"), the hash-chained audit log,
and the grant/request/revoke flows.

The class is deliberately the *only* stateful entry point the examples
and benchmarks need — it is the "application" a downstream user would
embed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.scheme import TypeAndIdentityPre
from repro.phr.store import EncryptedPhrStore, FilePhrStore
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import RandomSource, system_random
from repro.pairing.group import PairingGroup
from repro.phr.actors import AccessDeniedError, CategoryProxy, Patient, Requester
from repro.phr.audit import AuditLog
from repro.phr.records import DEFAULT_TAXONOMY, PhrCategory, PhrEntry

__all__ = ["PhrSystem", "AccessDeniedError"]

_PATIENT_DOMAIN = "patients-kgc"


@dataclass
class PhrSystem:
    """A complete deployment of the paper's PHR disclosure architecture.

    ``store_root`` switches the per-category proxies from in-memory stores
    to durable :class:`~repro.phr.store.FilePhrStore` backends (one
    subdirectory per category), so ciphertexts survive process restarts.
    """

    group: PairingGroup
    taxonomy: tuple[PhrCategory, ...] = DEFAULT_TAXONOMY
    rng: RandomSource = field(default_factory=system_random)
    audit: AuditLog = field(default_factory=AuditLog)
    store_root: str | None = None
    _registry: KgcRegistry = field(init=False)
    _scheme: TypeAndIdentityPre = field(init=False)
    _patients: dict[str, Patient] = field(default_factory=dict)
    _requesters: dict[str, Requester] = field(default_factory=dict)
    _proxies: dict[str, CategoryProxy] = field(default_factory=dict)

    def __post_init__(self):
        self._registry = KgcRegistry(self.group, self.rng)
        self._registry.create(_PATIENT_DOMAIN)
        self._scheme = TypeAndIdentityPre(self.group)
        for category in self.taxonomy:
            if self.store_root is None:
                store = EncryptedPhrStore(name="store-%s" % category.label)
            else:
                from repro.core.api import TIPRE_SCHEME_ID

                store = FilePhrStore(
                    Path(self.store_root) / category.label,
                    name="store-%s" % category.label,
                    scheme_id=TIPRE_SCHEME_ID,
                )
            self._proxies[category.label] = CategoryProxy(
                category=category.label, group=self.group, scheme=self._scheme, store=store
            )

    # ---------------------------------------------------------- registration

    def register_patient(self, name: str) -> Patient:
        """Enroll a patient at the patients' KGC (one key pair, total)."""
        if name in self._patients:
            raise ValueError("patient %r already registered" % name)
        kgc = self._registry.get(_PATIENT_DOMAIN)
        patient = Patient(
            name=name,
            params=kgc.params,
            private_key=kgc.extract(name),
            group=self.group,
            rng=self.rng.fork("patient-%s" % name) if hasattr(self.rng, "fork") else self.rng,
        )
        self._patients[name] = patient
        self.audit.record("register-patient", actor=name, subject=_PATIENT_DOMAIN)
        return patient

    def register_requester(self, name: str, role: str, domain: str) -> Requester:
        """Enroll a requester (doctor/insurer/...) at their own KGC domain."""
        if name in self._requesters:
            raise ValueError("requester %r already registered" % name)
        if domain == _PATIENT_DOMAIN:
            raise ValueError("requesters must live in their own domain")
        kgc = self._registry.create(domain) if domain not in self._registry else self._registry.get(domain)
        requester = Requester(
            name=name,
            role=role,
            params=kgc.params,
            private_key=kgc.extract(name),
            group=self.group,
        )
        self._requesters[name] = requester
        self.audit.record("register-requester", actor=name, subject=domain, role=role)
        return requester

    def patient(self, name: str) -> Patient:
        return self._patients[name]

    def requester(self, name: str) -> Requester:
        return self._requesters[name]

    def proxy_for(self, category: str) -> CategoryProxy:
        if category not in self._proxies:
            raise KeyError("no proxy for category %r (not in the taxonomy)" % category)
        return self._proxies[category]

    def categories(self) -> list[str]:
        return [category.label for category in self.taxonomy]

    # ---------------------------------------------------------------- upload

    def store_entry(self, patient_name: str, entry: PhrEntry) -> None:
        """Patient-side encryption + upload to the category's proxy store."""
        patient = self._patients[patient_name]
        blob = patient.encrypt_entry(entry)
        self.proxy_for(entry.category).accept_record(patient_name, entry.entry_id, blob)
        self.audit.record(
            "upload",
            actor=patient_name,
            subject=entry.entry_id,
            category=entry.category,
            bytes=len(blob),
        )

    # ----------------------------------------------------------------- grant

    def grant(self, patient_name: str, requester_name: str, category: str) -> None:
        """The paper's delegation step: Pextract + install at the proxy."""
        patient = self._patients[patient_name]
        requester = self._requesters[requester_name]
        proxy_key = patient.make_grant(requester, category)
        self.proxy_for(category).install_grant(proxy_key)
        self.audit.record(
            "grant", actor=patient_name, subject=requester_name, category=category
        )

    def revoke(self, patient_name: str, requester_name: str, category: str) -> bool:
        """Remove the proxy key and the policy row."""
        patient = self._patients[patient_name]
        requester = self._requesters[requester_name]
        removed = self.proxy_for(category).revoke_grant(
            patient.private_key.domain, patient_name, requester.params.domain, requester_name
        )
        patient.record_revocation(requester, category)
        self.audit.record(
            "revoke",
            actor=patient_name,
            subject=requester_name,
            category=category,
            removed=removed,
        )
        return removed

    # --------------------------------------------------------------- request

    def request_entry(
        self, requester_name: str, patient_name: str, category: str, entry_id: str
    ) -> PhrEntry:
        """A requester fetches one record: proxy re-encrypts, requester decrypts."""
        requester = self._requesters[requester_name]
        proxy = self.proxy_for(category)
        try:
            reencrypted = proxy.serve(
                patient_name, entry_id, requester.params.domain, requester_name
            )
        except AccessDeniedError:
            self.audit.record(
                "request-denied",
                actor=requester_name,
                subject=entry_id,
                patient=patient_name,
                category=category,
            )
            raise
        entry = requester.read_entry(reencrypted)
        self.audit.record(
            "request-served",
            actor=requester_name,
            subject=entry_id,
            patient=patient_name,
            category=category,
        )
        return entry

    def request_category(
        self, requester_name: str, patient_name: str, category: str
    ) -> list[PhrEntry]:
        """Fetch and decrypt every record of one category."""
        proxy = self.proxy_for(category)
        records = proxy.store.entries_for(patient_name, category)
        return [
            self.request_entry(requester_name, patient_name, category, record.entry_id)
            for record in records
        ]

    # ------------------------------------------------------------- emergency

    def emergency_access(
        self, responder_name: str, patient_name: str
    ) -> list[PhrEntry]:
        """The paper's travel scenario: the emergency profile on demand.

        Works only if the patient granted ``emergency-profile`` to the
        responder ahead of time (e.g. when arriving in a new country).
        """
        self.audit.record("emergency-access", actor=responder_name, subject=patient_name)
        return self.request_category(responder_name, patient_name, "emergency-profile")
