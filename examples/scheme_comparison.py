"""Compare the paper's scheme against every baseline PRE scheme.

Runs the identical lifecycle (encrypt -> rekey -> re-encrypt -> decrypt)
through each adapter, printing the property matrix of Section 4.3 /
Ateniese et al. and measured per-operation costs.

Run:  python examples/scheme_comparison.py
"""

from repro import HmacDrbg, PairingGroup
from repro.baselines import PROPERTY_NAMES, all_adapters
from repro.bench import measure, print_table

group = PairingGroup("SS256")
rng = HmacDrbg("scheme-comparison")

# --- property matrix ---------------------------------------------------------
rows = []
for adapter in all_adapters(group):
    rows.append(
        [adapter.name] + ["yes" if adapter.properties[p] else "no" for p in PROPERTY_NAMES]
    )
print_table("PRE property matrix", ["scheme"] + list(PROPERTY_NAMES), rows)

# --- per-operation timing ------------------------------------------------------
rows = []
for adapter in all_adapters(group):
    adapter.setup(rng)
    message = adapter.sample_message(rng)
    ciphertext = adapter.encrypt(message, rng)
    rekey = adapter.rekey(rng)
    transformed = adapter.reencrypt(ciphertext, rekey)

    encrypt = measure("enc", lambda: adapter.encrypt(message, rng), repeats=3)
    reencrypt = measure("reenc", lambda: adapter.reencrypt(ciphertext, rekey), repeats=3)
    decrypt = measure(
        "dec", lambda: adapter.decrypt_reencrypted(transformed), repeats=3
    )
    assert adapter.decrypt_reencrypted(transformed) == message
    rows.append(
        [
            adapter.name,
            "%.1f" % encrypt.median_ms,
            "%.1f" % reencrypt.median_ms,
            "%.1f" % decrypt.median_ms,
            encrypt.operations_summary(),
        ]
    )
print_table(
    "per-operation cost on %s (ms, median of 3)" % group.params.name,
    ["scheme", "encrypt", "re-encrypt", "re-decrypt", "encrypt op profile"],
    rows,
)

print(
    "\nNote: the paper's scheme pays one extra GT exponentiation at encryption\n"
    "time relative to Green-Ateniese — that exponent is exactly what buys the\n"
    "per-type granularity no baseline offers."
)
