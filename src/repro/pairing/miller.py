"""Miller-loop line-coefficient precomputation for the reduced Tate pairing.

The classic affine Miller loop pays *two* modular inversions per bit of
the group order: one for the tangent/secant slope and one hidden inside
the affine point update.  For a fixed first argument ``P`` the whole
doubling/addition chain — the points visited and the line slopes taken
at each — depends only on ``P``, so it can be computed once:

1. walk the chain in Jacobian coordinates (no inversions at all),
2. normalise every visited point with ONE Montgomery batch inversion,
3. invert every slope denominator with ONE more batch inversion,
4. store per step the pair ``(c0, c1)`` with ``c0 = slope*xt - yt`` and
   ``c1 = slope``, so the line value at the distorted evaluation point
   ``phi(Q) = (-xq, i*yq)`` is just ``(c0 + c1*xq) + yq*i`` — a single
   base-field multiplication per step.

Evaluating the Miller function at any ``Q`` then costs ~7 base-field
multiplications per bit and zero inversions, against the affine loop's
two extended-Euclids per bit.  :class:`~repro.pairing.group.PairingGroup`
caches instances for repeatedly-paired points (the generator, public
keys, re-encryption-key points) alongside its ``FixedBaseTable``.

The hot loops run on raw integers (or bigint-backend values), bypassing
the :class:`~repro.math.fields.Fp2Element` object layer; the affine
reference path in :mod:`repro.pairing.tate` plus the cross-path property
suite pin every output bit-identical.
"""

from __future__ import annotations

from repro.ec import jacobian as _jac
from repro.ec.curve import Point
from repro.ec.supersingular import SupersingularCurve
from repro.math.fields import Fp2Element
from repro.math.ntheory import batch_modinv, modinv

__all__ = [
    "MillerPrecomp",
    "fp2_mul_raw",
    "fp2_square_raw",
    "fp2_pow_raw",
    "final_exponentiation_raw",
    "final_exponentiation_batch",
]


def fp2_square_raw(a, b, p):
    """``(a + b*i)^2`` over F_p[i]: ``(a-b)(a+b) + 2ab*i`` (2 mults)."""
    return (a - b) * (a + b) % p, 2 * a * b % p


def fp2_mul_raw(a, b, c, d, p):
    """``(a + b*i) * (c + d*i)`` via Karatsuba (3 mults)."""
    ac = a * c
    bd = b * d
    cross = (a + b) * (c + d) - ac - bd
    return (ac - bd) % p, cross % p


def fp2_pow_raw(a, b, exponent, p):
    """``(a + b*i) ** exponent`` by left-to-right square-and-multiply."""
    if exponent == 0:
        return 1 % p, 0
    ra, rb = a % p, b % p
    for bit in bin(exponent)[3:]:
        ra, rb = fp2_square_raw(ra, rb, p)
        if bit == "1":
            ra, rb = fp2_mul_raw(ra, rb, a, b, p)
    return ra, rb


def final_exponentiation_raw(params: SupersingularCurve, fa, fb):
    """``f ** ((p^2-1)/q)`` on a raw pair: Frobenius part, then cofactor.

    ``f^(p-1) = conj(f) * f^(-1) = (a - b*i)^2 / (a^2 + b^2)`` — one
    inversion — followed by the ``(p+1)/q`` power.
    """
    p = params.base_field.p
    norm = (fa * fa + fb * fb) % p
    n_inv = modinv(norm, p)
    ga = (fa * fa - fb * fb) * n_inv % p
    gb = -2 * fa * fb * n_inv % p
    return fp2_pow_raw(ga, gb, (params.p + 1) // params.q, p)


def final_exponentiation_batch(params: SupersingularCurve, values):
    """Final-exponentiate many raw Miller values, sharing one inversion.

    The Frobenius step needs ``1 / (a_i^2 + b_i^2)`` per value; Montgomery
    batch inversion folds those into a single ``modinv``.  The per-value
    cofactor powers remain (they produce independent GT elements).
    """
    p = params.base_field.p
    norms = [(fa * fa + fb * fb) % p for fa, fb in values]
    inverses = batch_modinv(norms, p)
    cofactor = (params.p + 1) // params.q
    out = []
    for (fa, fb), n_inv in zip(values, inverses):
        ga = (fa * fa - fb * fb) * n_inv % p
        gb = -2 * fa * fb * n_inv % p
        out.append(fp2_pow_raw(ga, gb, cofactor, p))
    return out


class MillerPrecomp:
    """Precomputed line coefficients of ``f_{q,P}`` for a fixed point ``P``.

    Construction costs one chain walk plus two batch inversions (so ~2
    ``modinv`` total); each :meth:`evaluate` is then inversion-free.
    Raises :class:`ArithmeticError` when ``P`` is not of order ``q`` —
    the same condition the affine Miller loop checks at its end.
    """

    __slots__ = ("params", "p", "steps")

    def __init__(self, params: SupersingularCurve, point: Point):
        if point.is_infinity():
            raise ValueError("Miller precomputation needs a non-identity point")
        if point.curve != params.curve:
            raise ValueError("pairing inputs must be base-curve points")
        self.params = params
        p = params.base_field.p
        self.p = p
        a = params.curve.a.value
        x0, y0 = point.x.value, point.y.value

        # Pass 1: the doubling/addition chain in Jacobian coordinates.
        chain = []  # Jacobian triple at which each line is taken
        kinds = []  # True = tangent (doubling step), False = secant (addition)
        t = (x0, y0, 1)
        for bit in bin(params.q)[3:]:
            chain.append(t)
            kinds.append(True)
            t = _jac.jac_double(t, a, p)
            if bit == "1":
                chain.append(t)
                kinds.append(False)
                t = _jac.jac_add_mixed(t, x0, y0, a, p)
        if not _jac.jac_is_infinity(t):
            raise ArithmeticError(
                "Miller loop did not terminate at infinity; P not of order q"
            )

        # Pass 2: one batch inversion normalises every chain point.
        affine = _jac.batch_normalize(chain, p)

        # Pass 3: one batch inversion yields every slope denominator.
        denom_index = []
        denoms = []
        for i, (pt, tangent) in enumerate(zip(affine, kinds)):
            if pt is None:
                continue  # line at infinity contributes nothing
            xt, yt = pt
            denom = 2 * yt % p if tangent else (x0 - xt) % p
            if denom != 0:
                denom_index.append(i)
                denoms.append(denom)
        inverses = dict(zip(denom_index, batch_modinv(denoms, p)))

        # Pass 4: fold each line into (do_square, c0, c1) so evaluation is
        # one multiplication per step: l(phi(Q)) = (c0 + c1*xq) + yq*i.
        steps = []
        for i, (pt, tangent) in enumerate(zip(affine, kinds)):
            inv = inverses.get(i)
            if pt is None or inv is None:
                # Vertical line (value in F_p, killed by the final exp):
                # a doubling step still squares f; an addition step is a no-op.
                if tangent:
                    steps.append((True, None, None))
                continue
            xt, yt = pt
            if tangent:
                slope = (3 * xt * xt + a) * inv % p
            else:
                slope = (y0 - yt) * inv % p
            c0 = (slope * xt - yt) % p
            c1 = slope
            steps.append((tangent, c0, c1))
        self.steps = steps

    def evaluate_raw(self, xq, yq):
        """``f_{q,P}(phi(Q))`` as a raw ``(a, b)`` pair, no inversions."""
        p = self.p
        fa, fb = 1, 0
        for do_square, c0, c1 in self.steps:
            if do_square:
                fa, fb = (fa - fb) * (fa + fb) % p, 2 * fa * fb % p
            if c1 is not None:
                real = (c0 + c1 * xq) % p
                fa, fb = fp2_mul_raw(fa, fb, real, yq, p)
        return fa, fb

    def evaluate(self, xq, yq) -> Fp2Element:
        """``f_{q,P}(phi(Q))`` as an :class:`Fp2Element` (no final exp)."""
        fa, fb = self.evaluate_raw(xq, yq)
        return Fp2Element(self.params.ext_field, fa, fb)
