"""Cross-module integration tests: the full stack in realistic flows."""

import pytest

from repro.core.scheme import TypeAndIdentityPre
from repro.hybrid.kem import HybridPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.phr.generator import PhrGenerator
from repro.phr.workflow import PhrSystem
from repro.serialization.containers import (
    deserialize_hybrid_reencrypted,
    deserialize_proxy_key,
    deserialize_typed_ciphertext,
    serialize_hybrid_reencrypted,
    serialize_proxy_key,
    serialize_typed_ciphertext,
)


class TestWireProtocol:
    """Every artifact crosses a byte boundary, as in a real deployment."""

    def test_delegation_over_the_wire(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, bob = pre_setting
        message = group.random_gt(rng)

        # Alice -> store: serialized ciphertext.
        wire_ct = serialize_typed_ciphertext(
            group, scheme.encrypt(kgc1.params, alice, message, "labs", rng)
        )
        # Alice -> proxy: serialized proxy key.
        wire_rk = serialize_proxy_key(
            group, scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
        )
        # Proxy: deserialize both, transform, serialize for Bob.
        hybrid = HybridPre(group, scheme)
        transformed = scheme.preenc(
            deserialize_typed_ciphertext(group, wire_ct),
            deserialize_proxy_key(group, wire_rk),
        )
        assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_hybrid_over_the_wire(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, bob = pre_setting
        hybrid = HybridPre(group, scheme)
        payload = b'{"test": "HbA1c", "value": 6.1}'
        ciphertext = hybrid.encrypt(kgc1.params, alice, payload, "labs", rng)
        proxy_key = scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
        wire = serialize_hybrid_reencrypted(group, hybrid.reencrypt(ciphertext, proxy_key))
        received = deserialize_hybrid_reencrypted(group, wire)
        assert hybrid.decrypt_reencrypted(received, bob) == payload


class TestPaperScenario:
    """The complete Section-5 story as a single narrative test."""

    def test_alice_travels_to_the_us(self, group):
        system = PhrSystem(group=group, rng=HmacDrbg("travel"))
        system.register_patient("alice")
        generator = PhrGenerator(HmacDrbg("alice-history"), "alice")

        # 1. Alice categorises her PHR (t1 illness, t2 food, t3 emergency).
        for entry in generator.history(entries_per_category=1):
            system.store_entry("alice", entry)

        # 2. Travelling to the US, she finds a proxy there and delegates t3.
        system.register_requester("us-er-team", role="emergency", domain="us-ems")
        system.grant("alice", "us-er-team", "emergency-profile")

        # 3. Emergency: the ER reads her blood group on demand...
        profile = system.emergency_access("us-er-team", "alice")
        assert profile[0].content["blood_group"]

        # 4. ...but her illness history (top secret) stays sealed.
        from repro.phr.actors import AccessDeniedError

        with pytest.raises(AccessDeniedError):
            system.request_category("us-er-team", "alice", "illness-history")

        # 5. Back home, she revokes the US grant.
        assert system.revoke("alice", "us-er-team", "emergency-profile")
        with pytest.raises(AccessDeniedError):
            system.emergency_access("us-er-team", "alice")

        assert system.audit.verify_chain()


class TestCrossGroupGuards:
    def test_objects_do_not_mix_across_groups(self, rng):
        toy, ss256 = PairingGroup("TOY"), PairingGroup("SS256")
        registry = KgcRegistry(toy, rng)
        kgc1 = registry.create("KGC1")
        alice = kgc1.extract("alice")
        scheme_toy = TypeAndIdentityPre(toy)
        ciphertext = scheme_toy.encrypt(kgc1.params, alice, toy.random_gt(rng), "t", rng)
        scheme_big = TypeAndIdentityPre(ss256)
        with pytest.raises(Exception):
            scheme_big.decrypt(ciphertext, alice)


@pytest.mark.slow
class TestLargerParameters:
    """One full delegation on SS256 — catches TOY-only accidents."""

    def test_ss256_full_delegation(self):
        group = PairingGroup("SS256")
        rng = HmacDrbg("ss256-integration")
        registry = KgcRegistry(group, rng)
        kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
        alice, bob = kgc1.extract("alice"), kgc2.extract("bob")
        scheme = TypeAndIdentityPre(group)
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
        assert scheme.decrypt(ciphertext, alice) == message
        proxy_key = scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
        transformed = scheme.preenc(ciphertext, proxy_key)
        assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_ss256_hybrid(self):
        group = PairingGroup("SS256")
        rng = HmacDrbg("ss256-hybrid")
        registry = KgcRegistry(group, rng)
        kgc1 = registry.create("KGC1")
        alice = kgc1.extract("alice")
        hybrid = HybridPre(group)
        ciphertext = hybrid.encrypt(kgc1.params, alice, b"payload", "t", rng)
        assert hybrid.decrypt(ciphertext, alice) == b"payload"
