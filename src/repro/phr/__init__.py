"""The fine-grained PHR disclosure application (paper Section 5)."""

from repro.phr.actors import AccessDeniedError, CategoryProxy, Patient, Requester
from repro.phr.bundle import BundleError, export_bundle, import_bundle
from repro.phr.recovery import (
    KeyCustodianShare,
    backup_private_key,
    recover_private_key,
)
from repro.phr.audit import AuditEvent, AuditLog
from repro.phr.generator import PhrGenerator, WorkloadMix
from repro.phr.policy import DisclosurePolicy, Grant
from repro.phr.records import DEFAULT_TAXONOMY, PhrCategory, PhrEntry, Sensitivity
from repro.phr.store import (
    EncryptedPhrStore,
    EntryNotFoundError,
    FilePhrStore,
    StoredRecord,
)
from repro.phr.workflow import PhrSystem

__all__ = [
    "PhrSystem",
    "Patient",
    "Requester",
    "CategoryProxy",
    "AccessDeniedError",
    "PhrEntry",
    "PhrCategory",
    "DEFAULT_TAXONOMY",
    "Sensitivity",
    "DisclosurePolicy",
    "Grant",
    "EncryptedPhrStore",
    "FilePhrStore",
    "StoredRecord",
    "EntryNotFoundError",
    "AuditLog",
    "AuditEvent",
    "PhrGenerator",
    "WorkloadMix",
    "export_bundle",
    "import_bundle",
    "BundleError",
    "backup_private_key",
    "recover_private_key",
    "KeyCustodianShare",
]
