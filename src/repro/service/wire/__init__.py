"""HTTP/JSON wire protocol for the re-encryption gateway.

The paper's proxy is a *server* patients and clinicians reach over a
network; this package makes that literal.  Five layers:

* :mod:`repro.service.wire.codec` — versioned JSON messages for every
  gateway request/response dataclass, reusing the canonical container
  serialization for group elements; malformed input is rejected with
  the stable ``invalid-request`` code — plus the length-prefixed mux
  framing the async transport multiplexes those messages inside;
* :mod:`repro.service.wire.server` — :class:`GatewayHttpServer`, one or
  several scheme fleets behind stdlib ``ThreadingHTTPServer``
  (scheme-id-prefixed routes, ``GET /v1/schemes`` enumeration) with the
  error taxonomy mapped to HTTP statuses;
* :mod:`repro.service.wire.client` — :class:`RemoteGateway`, the same
  typed API as the in-process gateway, so drivers and benchmarks run
  unchanged against either;
* :mod:`repro.service.wire.aio_server` — :class:`AsyncGatewayServer`,
  the asyncio escape from thread-per-connection: one event loop, both
  mux framing and HTTP/1.1 on one port, gateway calls on a bounded
  worker pool;
* :mod:`repro.service.wire.aio_client` — :class:`MuxRemoteGateway`
  (many in-flight requests over ONE socket) and the URL-dispatching
  :func:`connect_gateway` factory.
"""

from repro.service.wire.aio_client import MuxRemoteGateway, connect_gateway
from repro.service.wire.aio_server import AsyncGatewayServer
from repro.service.wire.client import RemoteGateway, SchemeMismatchError, WireTransportError
from repro.service.wire.codec import (
    ERROR_TYPES,
    MUX_PROTOCOL,
    WIRE_FORMAT,
    FrameProtocolError,
    GrantBatchRequest,
    GrantBatchResponse,
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    ResizeRequest,
    decode_frame_payload,
    encode_frame,
    from_wire,
    neutral_error_to_wire,
    scheme_document,
    to_wire,
)
from repro.service.wire.server import STATUS_BY_CODE, GatewayHttpServer

__all__ = [
    "ERROR_TYPES",
    "AsyncGatewayServer",
    "FrameProtocolError",
    "GatewayHttpServer",
    "GrantBatchRequest",
    "GrantBatchResponse",
    "MUX_PROTOCOL",
    "MuxRemoteGateway",
    "ReEncryptBatchRequest",
    "ReEncryptBatchResponse",
    "RemoteGateway",
    "SchemeMismatchError",
    "ResizeRequest",
    "STATUS_BY_CODE",
    "WIRE_FORMAT",
    "WireTransportError",
    "connect_gateway",
    "decode_frame_payload",
    "encode_frame",
    "from_wire",
    "neutral_error_to_wire",
    "scheme_document",
    "to_wire",
]
