"""Tests for delegation-grouped request batching."""

import pytest

from repro.service.batch import BatchItemError, ReEncryptBatcher


class FakeCiphertext:
    """Just the header fields the batcher reads (no pairing work needed)."""

    def __init__(self, domain, identity, type_label, payload):
        self.domain = domain
        self.identity = identity
        self.type_label = type_label
        self.payload = payload


def _item(identity, delegatee, type_label, payload=0):
    return (FakeCiphertext("KGC1", identity, type_label, payload), "KGC2", delegatee)


class TestGrouping:
    def test_same_delegation_shares_a_group(self):
        items = [
            _item("alice", "bob", "labs", 1),
            _item("alice", "bob", "labs", 2),
            _item("alice", "carol", "labs", 3),
        ]
        groups = ReEncryptBatcher.group(items)
        assert len(groups) == 2
        assert groups[0].group_key == ("KGC1", "alice", "KGC2", "bob", "labs")
        assert groups[0].positions == (0, 1)
        assert groups[1].positions == (2,)

    def test_type_splits_groups(self):
        items = [_item("alice", "bob", "labs"), _item("alice", "bob", "meds")]
        assert len(ReEncryptBatcher.group(items)) == 2

    def test_groups_in_first_appearance_order(self):
        items = [
            _item("alice", "bob", "labs"),
            _item("zoe", "bob", "labs"),
            _item("alice", "bob", "labs"),
        ]
        groups = ReEncryptBatcher.group(items)
        assert [g.group_key[1] for g in groups] == ["alice", "zoe"]

    def test_empty_batch_groups_empty(self):
        assert ReEncryptBatcher.group([]) == []


class TestExecution:
    def test_one_key_resolution_per_group(self):
        items = [
            _item("alice", "bob", "labs", 1),
            _item("alice", "bob", "labs", 2),
            _item("alice", "bob", "labs", 3),
            _item("alice", "carol", "labs", 4),
        ]
        resolutions = []

        def resolve(group_key):
            resolutions.append(group_key)
            return "key-for-%s" % group_key[3]

        results = ReEncryptBatcher.execute(
            items, resolve, lambda ct, key, pos: (ct.payload, key)
        )
        assert len(resolutions) == 2  # not 4: lookups amortized per delegation
        assert results == [
            (1, "key-for-bob"),
            (2, "key-for-bob"),
            (3, "key-for-bob"),
            (4, "key-for-carol"),
        ]

    def test_results_restored_to_submission_order(self):
        # Interleave two delegations; outputs must still follow inputs 1:1.
        items = [
            _item("alice", "bob", "labs", 0),
            _item("alice", "carol", "labs", 1),
            _item("alice", "bob", "labs", 2),
            _item("alice", "carol", "labs", 3),
        ]
        results = ReEncryptBatcher.execute(items, lambda gk: gk[3], lambda ct, key, pos: ct.payload)
        assert results == [0, 1, 2, 3]

    def test_resolve_failure_names_first_position(self):
        items = [_item("alice", "bob", "labs", 0), _item("alice", "carol", "labs", 1)]

        def resolve(group_key):
            if group_key[3] == "carol":
                raise KeyError("no key")
            return "k"

        with pytest.raises(BatchItemError) as excinfo:
            ReEncryptBatcher.execute(items, resolve, lambda ct, key, pos: ct.payload)
        assert excinfo.value.position == 1
        assert isinstance(excinfo.value.cause, KeyError)

    def test_transform_failure_names_its_position(self):
        items = [_item("alice", "bob", "labs", 0), _item("alice", "bob", "labs", 1)]

        def transform(ct, key, pos):
            if ct.payload == 1:
                raise ValueError("bad ciphertext")
            return ct.payload

        with pytest.raises(BatchItemError) as excinfo:
            ReEncryptBatcher.execute(items, lambda gk: "k", transform)
        assert excinfo.value.position == 1

    def test_transform_receives_submission_positions(self):
        items = [_item("alice", "bob", "labs", 10), _item("alice", "bob", "labs", 20)]
        seen = []
        ReEncryptBatcher.execute(
            items, lambda gk: "k", lambda ct, key, pos: seen.append((pos, ct.payload))
        )
        assert seen == [(0, 10), (1, 20)]

    def test_all_keys_resolve_before_any_transform(self):
        """A missing delegation aborts the batch before side effects run."""
        items = [_item("alice", "bob", "labs", 0), _item("alice", "carol", "labs", 1)]
        transformed = []

        def resolve(group_key):
            if group_key[3] == "carol":
                raise KeyError("no key")
            return "k"

        with pytest.raises(BatchItemError):
            ReEncryptBatcher.execute(
                items, resolve, lambda ct, key, pos: transformed.append(pos)
            )
        assert transformed == []  # bob's group never transformed
