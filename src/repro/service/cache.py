"""LRU caching for the gateway's two hot lookups.

Two caches front the shards:

* the **proxy-key cache** short-circuits the shard's key-table lookup for
  the (delegator, delegatee, type) triples that dominate a workload;
* the **KEM-result cache** stores the output of ``Preenc`` keyed by the
  full (ciphertext, delegatee) pair.  ``Preenc`` is deterministic — the
  transformed ciphertext is a pure function of the input ciphertext and
  the installed key — so replaying a cached result is sound as long as the
  entry is invalidated when the underlying key changes, which the gateway
  does on every grant and revoke.

Hits, misses and evictions are reported both locally (:class:`CacheStats`)
and through :func:`repro.bench.counters.record_operation`, so the E9
benchmark can attribute saved pairings to the cache with the same
machinery E1 uses for group operations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.bench.counters import record_operation

__all__ = ["LruCache", "CacheStats"]

# Distinguishes "not cached" from "cached None" in lookups that must tell
# them apart (invalidate's counter, get_or_compute's miss path).
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of one cache's accounting."""

    name: str
    size: int
    capacity: int
    hits: int
    misses: int
    evictions: int
    invalidations: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LruCache:
    """A bounded mapping with least-recently-used eviction and accounting.

    Thread-safe: a single internal lock covers entries *and* counters, so
    concurrent shard workers never corrupt the recency order or lose a
    hit/miss increment (the consistency the stress tests assert on).
    """

    def __init__(self, capacity: int, name: str = "cache"):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        # key -> [flight lock, waiter count]; single-flight state for
        # get_or_compute, pruned when the last waiter leaves.
        self._flights: dict[Hashable, list] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                record_operation("%s_hit" % self.name)
                return self._entries[key]
            self._misses += 1
            record_operation("%s_miss" % self.name)
            return default

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value or compute, store and return it.

        ``compute`` may raise; nothing is cached in that case (and the
        next waiter computes for itself).

        Concurrent misses on the same key are *single-flight*: one
        caller runs ``compute`` while the others block on a per-key
        flight lock and then read the stored value — an expensive
        pairing is never paid twice for one key.  ``compute`` still runs
        outside the cache-wide lock, so a slow computation for one key
        never serializes lookups (or computations) for other keys.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                record_operation("%s_hit" % self.name)
                return self._entries[key]
            self._misses += 1
            record_operation("%s_miss" % self.name)
            flight = self._flights.setdefault(key, [threading.Lock(), 0])
            flight[1] += 1
        try:
            with flight[0]:
                # A previous flight holder may have stored the value while
                # this thread waited; re-check without touching the stats —
                # the miss above already described this caller's outcome.
                with self._lock:
                    if key in self._entries:
                        self._entries.move_to_end(key)
                        return self._entries[key]
                value = compute()
                self.put(key, value)
                return value
        finally:
            with self._lock:
                flight[1] -= 1
                if flight[1] == 0 and self._flights.get(key) is flight:
                    del self._flights[key]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the oldest when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                record_operation("%s_eviction" % self.name)

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns False when it was not cached.

        The absence check uses a private sentinel, not ``None``: a cached
        value of ``None`` is a real entry, and dropping it must count as
        an invalidation and return True.
        """
        with self._lock:
            if self._entries.pop(key, _MISSING) is _MISSING:
                return False
            self._invalidations += 1
            return True

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns count.

        Used on revoke, where one (delegator, delegatee, type) triple may
        back many cached KEM results.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self._invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                size=len(self._entries),
                capacity=self.capacity,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
            )
