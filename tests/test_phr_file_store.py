"""Tests for the durable file-backed PHR store."""

import pytest

from repro.math.drbg import HmacDrbg
from repro.phr.generator import PhrGenerator
from repro.phr.store import EntryNotFoundError, FilePhrStore


@pytest.fixture()
def store(tmp_path):
    return FilePhrStore(tmp_path / "store")


class TestBasicOperations:
    def test_put_get(self, store):
        store.put("alice", "labs", "e1", b"ciphertext")
        record = store.get("alice", "e1")
        assert record.blob == b"ciphertext"
        assert record.category == "labs"
        assert record.patient == "alice"

    def test_missing(self, store):
        with pytest.raises(EntryNotFoundError):
            store.get("alice", "nope")

    def test_bytes_only(self, store):
        with pytest.raises(TypeError):
            store.put("alice", "labs", "e1", "text")

    def test_overwrite(self, store):
        store.put("alice", "labs", "e1", b"v1")
        store.put("alice", "labs", "e1", b"v2")
        assert store.get("alice", "e1").blob == b"v2"
        assert store.record_count() == 1

    def test_delete(self, store):
        store.put("alice", "labs", "e1", b"x")
        assert store.delete("alice", "e1")
        assert not store.delete("alice", "e1")
        with pytest.raises(EntryNotFoundError):
            store.get("alice", "e1")

    def test_filters_and_accounting(self, store):
        store.put("alice", "labs", "e1", b"aaaa")
        store.put("alice", "vitals", "e2", b"bb")
        store.put("bob", "labs", "e3", b"c")
        assert [r.entry_id for r in store.entries_for("alice")] == ["e1", "e2"]
        assert [r.entry_id for r in store.entries_for("alice", "labs")] == ["e1"]
        assert store.patients() == ["alice", "bob"]
        assert store.record_count() == 3
        assert store.size_bytes() == 7

    def test_pipe_in_patient_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("a|b", "labs", "e1", b"x")

    def test_path_traversal_neutralised(self, store, tmp_path):
        store.put("alice", "labs", "../escape", b"x")
        # The blob must stay inside the store root.
        stray = tmp_path / "escape.bin"
        assert not stray.exists()
        assert store.get("alice", "../escape").blob == b"x"


class TestDurability:
    def test_reopen_preserves_records(self, tmp_path):
        first = FilePhrStore(tmp_path / "store")
        first.put("alice", "labs", "e1", b"persisted")
        second = FilePhrStore(tmp_path / "store")
        assert second.get("alice", "e1").blob == b"persisted"
        assert second.record_count() == 1

    def test_reopen_after_delete(self, tmp_path):
        first = FilePhrStore(tmp_path / "store")
        first.put("alice", "labs", "e1", b"x")
        first.delete("alice", "e1")
        second = FilePhrStore(tmp_path / "store")
        assert second.record_count() == 0


class TestProxyIntegration:
    def test_category_proxy_over_file_store(self, tmp_path, pre_setting, group, rng):
        """A CategoryProxy backed by the durable store serves requests."""
        from repro.phr.actors import CategoryProxy, Patient, Requester

        scheme, kgc1, kgc2, alice_key, bob_key = pre_setting
        alice = Patient(
            name="alice", params=kgc1.params, private_key=alice_key, group=group, rng=rng
        )
        bob = Requester(
            name="bob", role="doctor", params=kgc2.params, private_key=bob_key, group=group
        )
        proxy = CategoryProxy(
            category="lab-results",
            group=group,
            scheme=scheme,
            store=FilePhrStore(tmp_path / "labs"),
        )
        entry = PhrGenerator(HmacDrbg("file-store"), "alice").entry_for("lab-results")
        proxy.accept_record("alice", entry.entry_id, alice.encrypt_entry(entry))
        proxy.install_grant(alice.make_grant(bob, "lab-results"))

        served = proxy.serve("alice", entry.entry_id, "KGC2", "bob")
        assert bob.read_entry(served) == entry

        # The durable copy survives a "restart" of the proxy.
        reopened = CategoryProxy(
            category="lab-results",
            group=group,
            scheme=scheme,
            store=FilePhrStore(tmp_path / "labs"),
        )
        reopened.install_grant(alice.make_grant(bob, "lab-results"))
        assert bob.read_entry(
            reopened.serve("alice", entry.entry_id, "KGC2", "bob")
        ) == entry
