"""Boneh--Franklin FullIdent: the CCA-secure IBE via Fujisaki--Okamoto.

The paper's conclusion names chosen-ciphertext security as future work;
for the IBE *substrate* the original Boneh--Franklin paper already gave
the answer — the FullIdent transform — and we implement it so the library
covers the full BF construction:

    Encrypt(m, id):  sigma <-R {0,1}^n
                     r  = H3(sigma || m)            (in Z_q^*)
                     c  = ( g^r,
                            sigma XOR H2(e(pk_id, pk)^r),
                            m XOR H4(sigma) )

    Decrypt(c, sk):  sigma = c2 XOR H2(e(sk, c1))
                     m     = c3 XOR H4(sigma)
                     check c1 == g^H3(sigma || m)   else REJECT

The re-encryption check is what defeats chosen-ciphertext mauling: any
modification of (c1, c2, c3) changes sigma or m, the recomputed r no
longer matches c1, and decryption rejects.  Tested in
``tests/test_full_ident.py`` including explicit mauling attempts that the
CPA variant accepts but FullIdent rejects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.ec.curve import Point
from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.keys import IbeMasterKey, IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.pairing.group import PairingGroup

__all__ = ["FullIdentIbe", "FullIdentCiphertext", "DecryptionError"]

_SIGMA_LEN = 32


class DecryptionError(ValueError):
    """The ciphertext failed the Fujisaki--Okamoto validity check."""


@dataclass(frozen=True)
class FullIdentCiphertext:
    """``(c1, c2, c3) = (g^r, sigma XOR pad, m XOR H4(sigma))``."""

    domain: str
    identity: str
    c1: Point
    c2: bytes
    c3: bytes


class FullIdentIbe:
    """CCA-secure Boneh--Franklin (FullIdent) for byte-string messages.

    Setup/Extract are shared with :class:`BonehFranklinIbe` — FullIdent
    changes only the encryption envelope, so existing KGCs and keys work
    unchanged.
    """

    def __init__(self, group: PairingGroup, domain: str = "KGC"):
        self.group = group
        self.domain = domain
        self._basic = BonehFranklinIbe(group, domain)

    # Setup/Extract delegate to the shared implementation.

    def setup(self, rng: RandomSource | None = None) -> tuple[IbeParams, IbeMasterKey]:
        return self._basic.setup(rng)

    def extract(self, master: IbeMasterKey, identity: str) -> IbePrivateKey:
        return self._basic.extract(master, identity)

    # ------------------------------------------------------- FO hash oracles

    def _h3_to_scalar(self, sigma: bytes, message: bytes) -> int:
        """``H3: {0,1}^n x {0,1}* -> Z_q^*`` (the FO randomness)."""
        material = b"bf-fullident-h3|" + sigma + b"|" + message
        return self.group.hash_to_scalar(material)

    def _h4_pad(self, sigma: bytes, length: int) -> bytes:
        """``H4: {0,1}^n -> {0,1}^len`` (the message pad)."""
        out = b""
        block = 0
        while len(out) < length:
            out += hashlib.sha256(
                b"bf-fullident-h4|" + block.to_bytes(2, "big") + sigma
            ).digest()
            block += 1
        return out[:length]

    # ------------------------------------------------------------ transform

    def encrypt(
        self,
        params: IbeParams,
        message: bytes,
        identity: str,
        rng: RandomSource | None = None,
    ) -> FullIdentCiphertext:
        """FO-transformed encryption: randomness derived from (sigma, m)."""
        if params.domain != self.domain:
            raise ValueError("params belong to domain %r" % params.domain)
        rng = rng or system_random()
        sigma = rng.randbytes(_SIGMA_LEN)
        r = self._h3_to_scalar(sigma, message)
        pk_id = self._basic.public_key_of(identity)
        c1 = self.group.g1_mul(self.group.generator, r)
        shared = self.group.gt_exp(self.group.pair(pk_id, params.public_key), r)
        pad = self.group.hash_gt_to_bytes(shared, _SIGMA_LEN)
        c2 = bytes(s ^ p for s, p in zip(sigma, pad))
        c3 = bytes(m ^ p for m, p in zip(message, self._h4_pad(sigma, len(message))))
        return FullIdentCiphertext(domain=self.domain, identity=identity, c1=c1, c2=c2, c3=c3)

    def decrypt(self, ciphertext: FullIdentCiphertext, key: IbePrivateKey) -> bytes:
        """Decrypt-then-verify; raises :class:`DecryptionError` on mauling."""
        if key.domain != self.domain or ciphertext.domain != self.domain:
            raise ValueError("domain mismatch")
        if ciphertext.identity != key.identity:
            raise DecryptionError("ciphertext was not produced for this identity")
        if len(ciphertext.c2) != _SIGMA_LEN:
            raise DecryptionError("malformed c2 component")
        shared = self.group.pair(key.point, ciphertext.c1)
        pad = self.group.hash_gt_to_bytes(shared, _SIGMA_LEN)
        sigma = bytes(c ^ p for c, p in zip(ciphertext.c2, pad))
        message = bytes(
            c ^ p for c, p in zip(ciphertext.c3, self._h4_pad(sigma, len(ciphertext.c3)))
        )
        r = self._h3_to_scalar(sigma, message)
        if self.group.g1_mul(self.group.generator, r) != ciphertext.c1:
            raise DecryptionError("Fujisaki-Okamoto validity check failed")
        return message
