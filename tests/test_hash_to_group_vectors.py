"""Golden vectors for hash_to_group's cofactor clear.

hash_to_group now clears the cofactor through the raw-coordinate
Jacobian ladder (:func:`repro.ec.jacobian.jac_scalar_mul`) instead of
the generic ``Point * int`` path.  The vectors below were captured from
the implementation *before* that change, so they prove the rewrite is
bit-identical — any drift here would silently re-map every identity
hash in every deployed delegation universe.
"""

from __future__ import annotations

import pytest

from repro.ec.params import get_params

# (group, label) -> (x, y) of hash_to_group(label), captured pre-rewrite.
GOLDEN = {
    ("TOY", "golden-a"): (0xF08AE1400B7E17BAF25F8, 0x4D0072A759EEA142F3FC53),
    ("TOY", "golden-b"): (0x6B3ECB274EA78139B2ABD3, 0x2E240F191D6A3BD51CF979),
    ("TOY", "tenant:alice"): (0x1DAF0AB4462AF7318C89A3, 0x3CEE15249FC3410285482B),
    ("SS256", "golden-a"): (
        0x1C765BE20B54C96D4A8C968BE91CCA41F4310FF16CC8AF0548D09C4A2E160242,
        0x5D030ABBC2925E509F95012F61668A61CF9B3D35535CF347A93FA0704FC4E601,
    ),
    ("SS256", "golden-b"): (
        0x8EC8F247D960FCF1F94129D518C0001CD1EFB5450ECDED29B11C8EE1A0F37D9C,
        0x3540D5239B938C355147A51A3266777CFB6EDFD950494E35036A71BB3DC0165B,
    ),
    ("SS256", "tenant:alice"): (
        0x8E135B50FE5F439FC7CB745D9FF9C1FF3370AC830879A86CC16844BB3AF4F929,
        0x181F1931CF8DCE39EA19918B08D16215EC85EE3ED4C3F33D8905638BBB4CE927,
    ),
    ("SS512", "golden-a"): (
        0x8047A7F1981FEF41EA4F10B77E794BE3AA25CB4E3882CCA10E282D0FB2574CD3DA7884C653A66859DD542798967301F6B0150A2375166759691B97C5E79857B5,
        0x810AD5A1B6323989F8B32E5D727DF62E64B87A7284E2F7463E37A26AACA08C7DB05AA1B2D1904AC5846E06D9D71F6330DE6A7261B412A7CEF28E26425FD26D3,
    ),
    ("SS512", "golden-b"): (
        0xB964236BC3C2C5CF70830B45132FB0FAF03A73FE01E469268205E382822D20C218D5182C4653F0DD76B69909B4970E08C9F56A2EA7B2CC3EAB04E1A27BF06F73,
        0xACFFA94DDDCE210605C6483652BC54C243CFE6E21CCE6F1BF485AA0A86E6FBA54390F631110446007121D8A05A3753418BF613109DF51AEB08889D5E61909F92,
    ),
    ("SS512", "tenant:alice"): (
        0x70A1353D44089CD493DF51C074AC2EBAC1B09F3D1FC86FC7A4688CF4F40883A9BF434AF4A6667E1803938812686EE9F122CE5972F0F7617FDFFA84D013B9B3C5,
        0xAAA7F8113253C24780F6F1AA847EB9E44C407EA367FC14208442E0CB82649E35D9837FF29B6BF57D665991BD21BD260146AE1A180062FAA6C451A613E898C918,
    ),
}


@pytest.mark.parametrize(
    "group_name,label", sorted(GOLDEN), ids=lambda v: str(v)
)
def test_hash_to_group_matches_golden_vector(group_name, label):
    curve = get_params(group_name)
    point = curve.hash_to_group(label)
    expected_x, expected_y = GOLDEN[(group_name, label)]
    assert (int(point.x), int(point.y)) == (expected_x, expected_y)


@pytest.mark.parametrize("group_name", sorted({g for g, _ in GOLDEN}))
def test_hash_to_group_lands_in_subgroup(group_name):
    curve = get_params(group_name)
    point = curve.hash_to_group("subgroup-probe")
    assert curve.is_in_subgroup(point)
    assert not point.is_infinity()


def test_hash_to_group_agrees_with_generic_point_mul():
    """The direct jac_scalar_mul call equals candidate * h on Points."""
    curve = get_params("TOY")
    import hashlib

    from repro.math.ntheory import bytes_to_int

    data = b"cross-check"
    p_bytes = (curve.p.bit_length() + 7) // 8
    for counter in range(64):
        digest = b""
        block = 0
        while len(digest) < p_bytes + 8:
            digest += hashlib.sha256(
                b"repro-h2p"
                + counter.to_bytes(2, "big")
                + block.to_bytes(2, "big")
                + data
            ).digest()
            block += 1
        x = curve.base_field(bytes_to_int(digest[: p_bytes + 8]))
        candidate = curve.curve.lift_x(x, y_parity=digest[-1] & 1)
        if candidate is None:
            continue
        via_point = candidate * curve.h
        via_hash = curve.hash_to_group(data)
        assert (int(via_point.x), int(via_point.y)) == (
            int(via_hash.x),
            int(via_hash.y),
        )
        return
    pytest.fail("no liftable candidate found for cross-check data")
