"""Key and ciphertext containers for the Boneh--Franklin IBE layer.

These are plain frozen dataclasses: all behaviour lives in
:mod:`repro.ibe.boneh_franklin`.  Each container knows which KGC domain it
belongs to (``domain`` is a human-readable label such as ``"KGC1"``) so that
multi-authority protocols — the paper's delegator and delegatee live under
*different* KGCs — can detect cross-domain key misuse early.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.curve import Point
from repro.math.fields import Fp2Element

__all__ = ["IbeParams", "IbeMasterKey", "IbePrivateKey", "IbeCiphertext", "IbeByteCiphertext"]


@dataclass(frozen=True)
class IbeParams:
    """Public parameters of one Boneh--Franklin KGC domain.

    Attributes:
        group_name: name of the pairing parameter set (e.g. ``"SS512"``).
        domain: label of the KGC that generated these parameters.
        public_key: the KGC public key ``pk = g^alpha``.
    """

    group_name: str
    domain: str
    public_key: Point


@dataclass(frozen=True)
class IbeMasterKey:
    """The KGC master secret ``alpha`` (never leaves the KGC)."""

    domain: str
    alpha: int


@dataclass(frozen=True)
class IbePrivateKey:
    """A user private key ``sk_id = H1(id)^alpha``."""

    domain: str
    identity: str
    point: Point


@dataclass(frozen=True)
class IbeCiphertext:
    """Multiplicative-variant ciphertext ``(c1, c2) = (g^r, m * e(pk_id, pk)^r)``.

    The message is an element of GT; this is the variant the paper (and
    Green--Ateniese) need so that ciphertexts can be mauled homomorphically
    by the proxy.
    """

    domain: str
    identity: str
    c1: Point
    c2: Fp2Element


@dataclass(frozen=True)
class IbeByteCiphertext:
    """Original BasicIdent ciphertext ``(g^r, m XOR H2(e(pk_id, pk)^r))``."""

    domain: str
    identity: str
    c1: Point
    c2: bytes
