"""Tests for the gateway's LRU caches and their accounting."""

import pytest

from repro.bench.counters import count_operations
from repro.service.cache import LruCache


class TestBasics:
    def test_put_get(self):
        cache = LruCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)

    def test_contains_and_len(self):
        cache = LruCache(4)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1

    def test_put_refreshes_value(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1


class TestEviction:
    def test_oldest_evicted_first(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_eviction_counted(self):
        cache = LruCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.stats().evictions == 1


class TestAccounting:
    def test_hit_miss_counts_and_rate(self):
        cache = LruCache(4, name="test")
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("nope")
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_cache_hit_rate_zero(self):
        assert LruCache(4).stats().hit_rate == 0.0

    def test_operations_recorded_in_bench_counters(self):
        """Cache traffic shows up in the same counters E1 uses for pairings."""
        cache = LruCache(1, name="kc")
        with count_operations() as counter:
            cache.put("a", 1)
            cache.get("a")
            cache.get("b")
            cache.put("c", 2)  # evicts "a"
        assert counter.get("kc_hit") == 1
        assert counter.get("kc_miss") == 1
        assert counter.get("kc_eviction") == 1


class TestInvalidation:
    def test_invalidate_one(self):
        cache = LruCache(4)
        cache.put("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.stats().invalidations == 1

    def test_invalidate_cached_none_counts(self):
        """Regression: the old absence check compared against ``None``, so
        invalidating an entry cached as ``None`` removed it but returned
        False and never incremented the invalidation counter."""
        cache = LruCache(4)
        cache.put("a", None)
        assert cache.invalidate("a") is True
        assert "a" not in cache
        assert cache.stats().invalidations == 1

    def test_invalidate_where(self):
        cache = LruCache(8)
        for i in range(6):
            cache.put(("alice" if i % 2 else "bob", i), i)
        dropped = cache.invalidate_where(lambda key: key[0] == "alice")
        assert dropped == 3
        assert len(cache) == 3
        assert all(key[0] == "bob" for key in [("bob", 0), ("bob", 2), ("bob", 4)] if key in cache)

    def test_clear(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().invalidations == 2


class TestGetOrCompute:
    def test_computes_once(self):
        cache = LruCache(4)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_failed_compute_caches_nothing(self):
        cache = LruCache(4)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert "k" not in cache

    def test_cached_none_is_not_recomputed(self):
        cache = LruCache(4)
        calls = []

        def compute():
            calls.append(1)
            return None

        assert cache.get_or_compute("k", compute) is None
        assert cache.get_or_compute("k", compute) is None
        assert len(calls) == 1

    def test_concurrent_misses_are_single_flight(self):
        """Two threads missing on one key must run ``compute`` once.

        Regression test for the documented compute-twice race: the first
        caller is held *inside* its compute while a second caller arrives;
        without per-key single-flight locking the second compute runs too
        (and this test fails on the old code).
        """
        import threading

        cache = LruCache(4)
        first_entered = threading.Event()
        release_first = threading.Event()
        second_computes = []
        results = []

        def first_compute():
            first_entered.set()
            assert release_first.wait(timeout=5.0), "test deadlock"
            return "first"

        def second_compute():
            second_computes.append(1)
            return "second"

        def first_caller():
            results.append(cache.get_or_compute("k", first_compute))

        def second_caller():
            results.append(cache.get_or_compute("k", second_compute))

        thread_1 = threading.Thread(target=first_caller)
        thread_1.start()
        assert first_entered.wait(timeout=5.0)
        # First caller is mid-compute; the second must block, not compute.
        thread_2 = threading.Thread(target=second_caller)
        thread_2.start()
        # Give the second caller time to (wrongly) race into its compute
        # on the old code; on the new code it parks on the flight lock.
        thread_2.join(timeout=0.3)
        release_first.set()
        thread_1.join(timeout=5.0)
        thread_2.join(timeout=5.0)

        assert second_computes == [], "second caller computed despite the in-flight first"
        assert results == ["first", "first"]
        assert cache.get("k") == "first"

    def test_single_flight_releases_key_after_failed_compute(self):
        """A failed flight leaves no lock behind; the next caller computes."""
        cache = LruCache(4)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert cache.get_or_compute("k", lambda: "ok") == "ok"
        assert cache._flights == {}
