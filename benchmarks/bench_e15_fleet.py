"""E15 — the multi-process shard fleet against one server process.

The fleet promotes the wire protocol to the shard boundary: N
independent ``repro-pre serve`` worker processes behind a
:class:`~repro.service.fleet.FleetGateway` routing tier.  Two measured
claims:

1. **Process sharding pays for its hop.**  The E9 repeated-delegatee
   workload (batched, so the routing tier fans each batch out across
   worker processes concurrently) runs against a 1-worker fleet and a
   4-worker fleet — identical wire stack, identical routing tier, the
   only variable is how many OS processes share the crypto work.  On a
   multi-core host the 4-worker fleet must win; on a single core the
   numbers are recorded but the speedup is not asserted (there is no
   parallelism to harvest).

2. **Resize never stops traffic.**  While driver threads hammer the
   4-worker fleet with verified re-encryptions, the fleet grows to 6
   workers — key migration streams over the wire between processes —
   and **zero** requests fail during the migration.  This is asserted
   unconditionally.

Numbers land in ``BENCH_E15.json`` via ``tools/record_bench.py e15``.

TOY parameters: like E9-E14 this measures workload structure (process
fan-out, migration overlap), not key size.
"""

from __future__ import annotations

import os
import threading
import time

from repro.bench.report import print_table, record_bench_snapshot
from repro.service.driver import DELEGATEE_DOMAIN, build_setting, drive_requests
from repro.service.fleet import FleetGateway, FleetSupervisor
from repro.service.gateway import GrantRequest, ReEncryptRequest

N_REQUESTS = 96
BATCH_SIZE = 4
FLEET_WORKERS = 4
RESIZE_TO = 6
DRIVER_THREADS = 2


def _setting(seed: str):
    """The E9 shape: 4 patients x 3 types x 3 delegatees, 2 ciphertexts."""
    return build_setting(
        group_name="TOY",
        shard_count=1,
        n_patients=4,
        n_delegatees=3,
        n_types=3,
        ciphertexts_per_pair=2,
        seed=seed,
    )


def _grant_all(setting, gateway) -> int:
    granted = 0
    for name in setting.gateway.shard_names:
        for key in setting.gateway.shard_named(name).table:
            gateway.grant(GrantRequest(tenant="bench", proxy_key=key))
            granted += 1
    return granted


def _timed_fleet_run(workers: int, tmp_path, seed: str) -> tuple[int, float]:
    """Verified E9 workload through a fresh ``workers``-process fleet."""
    setting = _setting(seed)
    supervisor = FleetSupervisor(
        "tipre/v1",
        shard_count=workers,
        state_root=tmp_path / ("state-%d" % workers),
        group_name="TOY",
    )
    gateway = FleetGateway(supervisor, telemetry=False)
    try:
        _grant_all(setting, gateway)
        start = time.perf_counter()
        verified = drive_requests(
            setting,
            N_REQUESTS,
            seed=seed + "-requests",
            batch_size=BATCH_SIZE,
            verify_every=4,
            gateway=gateway,
        )
        elapsed_s = time.perf_counter() - start
        assert verified > 0, "nothing verified through the %d-worker fleet" % workers
        return verified, elapsed_s
    finally:
        gateway.close()
        setting.gateway.close()


def test_e15_process_fleet_vs_single_process(tmp_path):
    cores = len(os.sched_getaffinity(0))
    single_verified, single_s = _timed_fleet_run(1, tmp_path, "e15-single")
    fleet_verified, fleet_s = _timed_fleet_run(FLEET_WORKERS, tmp_path, "e15-fleet")
    speedup = single_s / fleet_s if fleet_s else 0.0

    print_table(
        "E15: E9 workload, 1 worker process vs %d" % FLEET_WORKERS,
        ["workers", "requests", "verified", "elapsed ms", "req/s"],
        [
            ["1", str(N_REQUESTS), str(single_verified),
             "%.0f" % (single_s * 1000), "%.0f" % (N_REQUESTS / single_s)],
            [str(FLEET_WORKERS), str(N_REQUESTS), str(fleet_verified),
             "%.0f" % (fleet_s * 1000), "%.0f" % (N_REQUESTS / fleet_s)],
        ],
    )

    resize_document = _resize_under_load(tmp_path)

    record_bench_snapshot(
        "e15",
        {
            "experiment": "e15-process-fleet",
            "cores": cores,
            "workload": {
                "requests": N_REQUESTS,
                "batch_size": BATCH_SIZE,
                "single_process_ms": round(single_s * 1000, 1),
                "fleet_ms": round(fleet_s * 1000, 1),
                "fleet_workers": FLEET_WORKERS,
                "speedup": round(speedup, 3),
            },
            "resize_under_load": resize_document,
        },
    )

    # The parallelism claim needs parallel hardware; a single-core
    # container records the numbers without asserting the win.
    if cores >= 2:
        assert speedup > 1.0, (
            "%d worker processes (%.0fms) did not beat one (%.0fms) on %d cores"
            % (FLEET_WORKERS, fleet_s * 1000, single_s * 1000, cores)
        )


def _resize_under_load(tmp_path) -> dict:
    """Grow the fleet mid-traffic; zero failed requests, always asserted."""
    setting = _setting("e15-resize")
    supervisor = FleetSupervisor(
        "tipre/v1",
        shard_count=FLEET_WORKERS,
        state_root=tmp_path / "state-resize",
        group_name="TOY",
    )
    gateway = FleetGateway(supervisor, telemetry=False)
    try:
        granted = _grant_all(setting, gateway)
        pool_keys = sorted(setting.pool)
        failures: list[BaseException] = []
        served = [0]
        stop = threading.Event()

        def hammer(offset: int) -> None:
            position = offset
            while not stop.is_set():
                (patient, type_label) = pool_keys[position % len(pool_keys)]
                delegatee = setting.delegatees[position % len(setting.delegatees)]
                ciphertext, message = setting.pool[(patient, type_label)][0]
                position += 1
                request = ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=DELEGATEE_DOMAIN,
                    delegatee=delegatee,
                )
                try:
                    response = gateway.reencrypt(request)
                    recovered = setting.scheme.decrypt_reencrypted(
                        response.ciphertext, setting.delegatee_keys[delegatee]
                    )
                    assert recovered == message
                except BaseException as error:  # noqa: BLE001 - asserted below
                    failures.append(error)
                    return
                served[0] += 1

        threads = [
            threading.Thread(target=hammer, args=(offset,), daemon=True)
            for offset in range(DRIVER_THREADS)
        ]
        for thread in threads:
            thread.start()
        start = time.perf_counter()
        try:
            report = gateway.resize(RESIZE_TO)
        finally:
            time.sleep(0.3)
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
        resize_s = time.perf_counter() - start

        assert not failures, "request failed during the migration: %r" % failures[0]
        assert served[0] > 0, "no traffic overlapped the resize"
        assert report.new_shard_count == RESIZE_TO
        assert gateway.key_count() == granted

        print_table(
            "E15: rolling resize %d -> %d under sustained load"
            % (FLEET_WORKERS, RESIZE_TO),
            ["keys", "moved", "resize ms", "requests during", "failed"],
            [[str(granted), str(report.keys_moved), "%.0f" % (resize_s * 1000),
              str(served[0]), "0"]],
        )
        return {
            "from_workers": FLEET_WORKERS,
            "to_workers": RESIZE_TO,
            "keys": granted,
            "keys_moved": report.keys_moved,
            "resize_ms": round(resize_s * 1000, 1),
            "requests_during": served[0],
            "failed_requests": 0,
        }
    finally:
        gateway.close()
        setting.gateway.close()
