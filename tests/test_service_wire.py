"""Tests for the HTTP/JSON wire layer: codec, server, client loopback.

The codec tests assert *round-trip exactness* — the dataclass decoded
from the wire compares equal (group elements included) to the one that
was encoded — for every request/response type the gateway speaks.  The
loopback tests stand a real :class:`GatewayHttpServer` on an ephemeral
port and check that a :class:`RemoteGateway` observes bit-identical
results and the same error taxonomy as in-process calls.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.phr.store import EncryptedPhrStore
from repro.serialization.containers import serialize_reencrypted
from repro.service.cache import CacheStats, LruCache
from repro.service.driver import DELEGATEE_DOMAIN, build_setting, drive_requests
from repro.service.gateway import (
    DelegationNotFoundError,
    EntryMissingError,
    FetchRequest,
    FetchResponse,
    GatewayError,
    GrantRequest,
    GrantResponse,
    InvalidRequestError,
    RateLimitedError,
    ReEncryptRequest,
    ReEncryptResponse,
    ResizeReport,
    RevokeRequest,
    RevokeResponse,
    StoreUnavailableError,
)
from repro.service.metrics import GatewayMetrics
from repro.service.wire import (
    ERROR_TYPES,
    GatewayHttpServer,
    GrantBatchRequest,
    GrantBatchResponse,
    ReEncryptBatchRequest,
    ReEncryptBatchResponse,
    RemoteGateway,
    ResizeRequest,
    WIRE_FORMAT,
    WireTransportError,
    from_wire,
    to_wire,
)


@pytest.fixture()
def pre_objects(pre_setting, group, rng):
    """One of everything the codec must carry: key, ciphertexts, response."""
    scheme, kgc1, kgc2, alice, bob = pre_setting
    proxy_key = scheme.pextract(alice, "bob", "labs", kgc2.params, rng)
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
    reencrypted = scheme.preenc(ciphertext, proxy_key)
    return scheme, proxy_key, ciphertext, reencrypted, message, bob


def _round_trip(group, message, expect=None):
    decoded = from_wire(group, to_wire(group, message), expect=expect)
    assert decoded == message
    return decoded


class TestCodecRoundTrips:
    def test_grant_request(self, group, pre_objects):
        _scheme, proxy_key, *_rest = pre_objects
        _round_trip(group, GrantRequest(tenant="t", proxy_key=proxy_key), GrantRequest)

    def test_grant_response(self, group):
        _round_trip(group, GrantResponse(shard="shard-01"), GrantResponse)

    def test_grant_batch(self, group, pre_objects):
        _scheme, proxy_key, *_rest = pre_objects
        request = GrantRequest(tenant="t", proxy_key=proxy_key)
        _round_trip(
            group, GrantBatchRequest(requests=(request, request)), GrantBatchRequest
        )
        _round_trip(
            group,
            GrantBatchResponse(
                responses=(GrantResponse(shard="shard-00"), GrantResponse(shard="shard-02"))
            ),
            GrantBatchResponse,
        )

    def test_revoke_request_and_response(self, group):
        _round_trip(
            group,
            RevokeRequest(
                tenant="t",
                delegator_domain="KGC1",
                delegator="alice",
                delegatee_domain="KGC2",
                delegatee="bob",
                type_label="labs",
            ),
            RevokeRequest,
        )
        _round_trip(group, RevokeResponse(shard="shard-00", removed=True), RevokeResponse)

    def test_reencrypt_request(self, group, pre_objects):
        _scheme, _key, ciphertext, *_rest = pre_objects
        _round_trip(
            group,
            ReEncryptRequest(
                tenant="t",
                ciphertext=ciphertext,
                delegatee_domain="KGC2",
                delegatee="bob",
            ),
            ReEncryptRequest,
        )

    def test_reencrypt_response(self, group, pre_objects):
        _scheme, _key, _ct, reencrypted, *_rest = pre_objects
        _round_trip(
            group,
            ReEncryptResponse(ciphertext=reencrypted, shard="shard-02", cache_hit=False),
            ReEncryptResponse,
        )

    def test_reencrypt_batch(self, group, pre_objects):
        _scheme, _key, ciphertext, reencrypted, *_rest = pre_objects
        request = ReEncryptRequest(
            tenant="t", ciphertext=ciphertext, delegatee_domain="KGC2", delegatee="bob"
        )
        _round_trip(
            group,
            ReEncryptBatchRequest(requests=(request, request)),
            ReEncryptBatchRequest,
        )
        response = ReEncryptResponse(
            ciphertext=reencrypted, shard="shard-00", cache_hit=True
        )
        _round_trip(
            group,
            ReEncryptBatchResponse(responses=(response, response)),
            ReEncryptBatchResponse,
        )

    def test_fetch_request_optional_fields(self, group):
        _round_trip(group, FetchRequest(tenant="t", patient="p"), FetchRequest)
        _round_trip(
            group,
            FetchRequest(tenant="t", patient="p", entry_id="e-1", category="labs"),
            FetchRequest,
        )

    def test_fetch_response_carries_blobs(self, group):
        store = EncryptedPhrStore()
        store.put("p", "labs", "e-1", b"\x00\x01ciphertext bytes\xff")
        response = FetchResponse(records=(store.get("p", "e-1"),))
        decoded = _round_trip(group, response, FetchResponse)
        assert decoded.records[0].blob == b"\x00\x01ciphertext bytes\xff"

    def test_resize_request_and_report(self, group):
        _round_trip(group, ResizeRequest(tenant="admin", shard_count=6), ResizeRequest)
        _round_trip(
            group,
            ResizeReport(
                old_shard_count=4,
                new_shard_count=6,
                keys_moved=9,
                shards_added=("shard-04", "shard-05"),
                shards_removed=(),
                elapsed_ms=1.25,
            ),
            ResizeReport,
        )

    def test_metrics_snapshot(self, group):
        metrics = GatewayMetrics()
        metrics.observe("reencrypt", 2.5, "shard-00")
        metrics.observe("grant", 0.5, "shard-01")
        metrics.observe_rejection()
        metrics.observe_rejection(rate_limited=True)
        metrics.observe_resize(3)
        cache = LruCache(4, name="key_cache")
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        snapshot = metrics.snapshot(caches={"key_cache": cache.stats()})
        decoded = from_wire(group, to_wire(group, snapshot))
        # elapsed_s moves between snapshot and compare; check fields we froze.
        assert decoded.requests_total == snapshot.requests_total == 4
        assert decoded.served == 2
        assert decoded.rejected == 1 and decoded.rate_limited == 1
        assert decoded.resizes == 1 and decoded.keys_migrated == 3
        assert decoded.shard_requests == {"shard-00": 1, "shard-01": 1}
        assert decoded.latency == snapshot.latency
        assert decoded.caches["key_cache"] == CacheStats(
            name="key_cache",
            size=1,
            capacity=4,
            hits=1,
            misses=1,
            evictions=0,
            invalidations=0,
        )

    def test_every_error_code_round_trips_to_its_class(self, group):
        for code, cls in ERROR_TYPES.items():
            decoded = from_wire(group, to_wire(group, cls("boom %s" % code)))
            assert type(decoded) is cls
            assert decoded.code == code
            assert "boom" in str(decoded)

    def test_unknown_error_code_falls_back_to_base(self, group):
        text = json.dumps(
            {
                "wire": WIRE_FORMAT,
                "type": "error",
                "body": {"code": "never-heard-of-it", "message": "m"},
            }
        )
        decoded = from_wire(group, text)
        assert type(decoded) is GatewayError

    def test_unencodable_object_is_a_type_error(self, group):
        with pytest.raises(TypeError):
            to_wire(group, object())


class TestCodecRejection:
    def test_malformed_json(self, group):
        with pytest.raises(InvalidRequestError):
            from_wire(group, "{not json")

    def test_non_object_message(self, group):
        with pytest.raises(InvalidRequestError):
            from_wire(group, json.dumps([1, 2, 3]))

    def test_wrong_wire_version(self, group):
        text = json.dumps(
            {"wire": "repro-gateway/v999", "type": "grant-response", "body": {"shard": "s"}}
        )
        with pytest.raises(InvalidRequestError, match="wire format"):
            from_wire(group, text)

    def test_missing_wire_version(self, group):
        text = json.dumps({"type": "grant-response", "body": {"shard": "s"}})
        with pytest.raises(InvalidRequestError):
            from_wire(group, text)

    def test_unknown_message_type(self, group):
        text = json.dumps({"wire": WIRE_FORMAT, "type": "teleport-request", "body": {}})
        with pytest.raises(InvalidRequestError, match="unknown wire message type"):
            from_wire(group, text)

    def test_missing_field(self, group):
        text = json.dumps({"wire": WIRE_FORMAT, "type": "grant-response", "body": {}})
        with pytest.raises(InvalidRequestError, match="missing wire field"):
            from_wire(group, text)

    def test_mistyped_field(self, group):
        text = json.dumps(
            {"wire": WIRE_FORMAT, "type": "grant-response", "body": {"shard": 7}}
        )
        with pytest.raises(InvalidRequestError, match="must be str"):
            from_wire(group, text)

    def test_bool_is_not_an_int(self, group):
        text = json.dumps(
            {
                "wire": WIRE_FORMAT,
                "type": "resize-request",
                "body": {"tenant": "t", "shard_count": True},
            }
        )
        with pytest.raises(InvalidRequestError):
            from_wire(group, text)

    def test_corrupt_element_envelope(self, group, pre_objects):
        _scheme, proxy_key, *_rest = pre_objects
        message = json.loads(to_wire(group, GrantRequest(tenant="t", proxy_key=proxy_key)))
        message["body"]["proxy_key"]["payload"] = "AAAA"
        with pytest.raises(InvalidRequestError):
            from_wire(group, json.dumps(message))

    def test_expect_rejects_other_valid_types(self, group):
        text = to_wire(group, GrantResponse(shard="s"))
        with pytest.raises(InvalidRequestError, match="expected"):
            from_wire(group, text, expect=RevokeResponse)

    def test_expect_rejects_error_messages(self, group):
        text = to_wire(group, RateLimitedError("slow down"))
        with pytest.raises(InvalidRequestError):
            from_wire(group, text, expect=GrantResponse)


# ---------------------------------------------------------------- loopback


@pytest.fixture()
def loopback():
    """A live HTTP server over a seeded gateway plus a typed client."""
    setting = build_setting(
        group_name="TOY",
        shard_count=3,
        n_patients=2,
        n_delegatees=2,
        n_types=2,
        ciphertexts_per_pair=1,
        seed="wire-loopback",
    )
    with GatewayHttpServer(setting.gateway, setting.group) as server:
        client = RemoteGateway(server.url, setting.group)
        yield setting, server, client
    setting.gateway.close()


def _request_stream(setting):
    requests = []
    for (patient, type_label), entries in sorted(setting.pool.items()):
        ciphertext, _message = entries[0]
        for delegatee in setting.delegatees:
            requests.append(
                ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=DELEGATEE_DOMAIN,
                    delegatee=delegatee,
                )
            )
    return requests


class TestLoopback:
    def test_wire_results_bit_identical_to_in_process(self, loopback):
        setting, _server, client = loopback
        group, gateway = setting.group, setting.gateway
        for request in _request_stream(setting):
            wire = client.reencrypt(request)
            local = gateway.reencrypt(request)
            assert serialize_reencrypted(group, wire.ciphertext) == serialize_reencrypted(
                group, local.ciphertext
            )
            assert wire.shard == local.shard

    def test_batch_over_wire_matches_and_preserves_order(self, loopback):
        setting, _server, client = loopback
        requests = _request_stream(setting)
        wire = client.reencrypt_batch(requests)
        local = setting.gateway.reencrypt_batch(requests)
        assert [r.ciphertext for r in wire] == [r.ciphertext for r in local]
        assert [r.shard for r in wire] == [r.shard for r in local]

    def test_decrypted_plaintext_survives_the_wire(self, loopback):
        setting, _server, client = loopback
        (patient, type_label), entries = sorted(setting.pool.items())[0]
        ciphertext, message = entries[0]
        delegatee = setting.delegatees[0]
        response = client.reencrypt(
            ReEncryptRequest(
                tenant=patient,
                ciphertext=ciphertext,
                delegatee_domain=DELEGATEE_DOMAIN,
                delegatee=delegatee,
            )
        )
        recovered = setting.scheme.decrypt_reencrypted(
            response.ciphertext, setting.delegatee_keys[delegatee]
        )
        assert recovered == message

    def test_driver_runs_unchanged_against_the_wire(self, loopback):
        """drive_requests cannot tell a RemoteGateway from the local one."""
        setting, _server, client = loopback
        verified = drive_requests(
            setting, 16, seed="wire-drive", batch_size=4, gateway=client
        )
        assert verified > 0

    def test_revoke_then_reencrypt_is_no_delegation(self, loopback):
        setting, _server, client = loopback
        (patient, type_label), entries = sorted(setting.pool.items())[0]
        ciphertext, _message = entries[0]
        delegatee = setting.delegatees[0]
        revoked = client.revoke(
            RevokeRequest(
                tenant=patient,
                delegator_domain=ciphertext.domain,
                delegator=ciphertext.identity,
                delegatee_domain=DELEGATEE_DOMAIN,
                delegatee=delegatee,
                type_label=ciphertext.type_label,
            )
        )
        assert revoked.removed
        with pytest.raises(DelegationNotFoundError):
            client.reencrypt(
                ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=DELEGATEE_DOMAIN,
                    delegatee=delegatee,
                )
            )

    def test_rate_limit_maps_to_429_and_raises(self, loopback):
        setting, server, client = loopback
        setting.gateway.set_rate_limit(1.0, burst=1.0)
        request = _request_stream(setting)[0]
        try:
            with pytest.raises(RateLimitedError):
                for _ in range(5):
                    client.reencrypt(request)
        finally:
            setting.gateway.set_rate_limit(None)

    def test_fetch_without_store_is_no_store(self, loopback):
        _setting, _server, client = loopback
        with pytest.raises(StoreUnavailableError):
            client.fetch(FetchRequest(tenant="t", patient="p"))

    def test_metrics_over_wire_counts_served_requests(self, loopback):
        setting, _server, client = loopback
        before = client.snapshot().served
        client.reencrypt(_request_stream(setting)[0])
        after = client.snapshot().served
        assert after == before + 1

    def test_grant_batch_over_wire_installs_every_key(self, loopback):
        setting, _server, client = loopback
        gateway = setting.gateway
        keys = [
            key
            for name in gateway.shard_names
            for key in gateway.shard_named(name).table
        ][:3]
        assert keys, "seeded gateway has no proxy keys"
        for key in keys:
            removed = client.revoke(
                RevokeRequest(
                    tenant="t",
                    delegator_domain=key.delegator_domain,
                    delegator=key.delegator,
                    delegatee_domain=key.delegatee_domain,
                    delegatee=key.delegatee,
                    type_label=key.type_label,
                )
            )
            assert removed.removed
        responses = client.grant_batch(
            [GrantRequest(tenant="t", proxy_key=key) for key in keys]
        )
        assert len(responses) == len(keys)
        for key, response in zip(keys, responses):
            local = gateway.grant(GrantRequest(tenant="t", proxy_key=key))
            assert response.shard == local.shard

    def test_events_tail_over_wire(self, loopback):
        setting, server, client = loopback
        client.reencrypt(_request_stream(setting)[0])
        events = client.events_tail()
        assert events, "server kept no events"
        assert all("kind" in event and "ts" in event for event in events)
        # The GET itself is logged, so compare on sequence, not equality.
        newest = client.events_tail(2)
        assert len(newest) == 2
        assert newest[0]["seq"] + 1 == newest[1]["seq"]
        assert newest[-1]["seq"] >= events[-1]["seq"]
        # Malformed tail values are a 400, not a server error.
        status, _body = _raw_get(server.url, "/v1/events?tail=zero")
        assert status == 400
        status, _body = _raw_get(server.url, "/v1/events?tail=0")
        assert status == 400

    def test_resize_over_wire_moves_keys_and_keeps_serving(self, loopback):
        setting, _server, client = loopback
        total = setting.gateway.key_count()
        report = client.resize(5)
        assert report.new_shard_count == 5
        assert setting.gateway.key_count() == total
        assert client.reencrypt(_request_stream(setting)[0]).ciphertext is not None


def _raw_get(url: str, path: str):
    try:
        with urllib.request.urlopen(url + path, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _raw_post(url: str, path: str, data: bytes):
    request = urllib.request.Request(
        url + path, data=data, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestHttpSurface:
    def test_error_bodies_carry_stable_codes_and_statuses(self, loopback):
        _setting, server, _client = loopback
        cases = [
            (b"{broken json", 400, "invalid-request"),
            (json.dumps({"wire": "nope/v0", "type": "x", "body": {}}).encode(), 400, "invalid-request"),
        ]
        for payload, status, code in cases:
            got_status, body = _raw_post(server.url, "/v1/reencrypt", payload)
            assert got_status == status
            envelope = json.loads(body)
            assert envelope["type"] == "error"
            assert envelope["body"]["code"] == code

    def test_wrong_message_type_for_endpoint_rejected(self, loopback):
        setting, server, _client = loopback
        text = to_wire(setting.group, GrantResponse(shard="s"))
        status, body = _raw_post(server.url, "/v1/grant", text.encode())
        assert status == 400
        assert json.loads(body)["body"]["code"] == "invalid-request"

    def test_unknown_endpoint_is_404_error_body(self, loopback):
        _setting, server, _client = loopback
        status, body = _raw_post(server.url, "/v1/nonsense", b"{}")
        assert status == 404
        assert json.loads(body)["body"]["code"] == "invalid-request"

    def test_health_endpoint(self, loopback):
        _setting, server, _client = loopback
        with urllib.request.urlopen(server.url + "/v1/health", timeout=10.0) as response:
            assert response.status == 200
            assert json.loads(response.read()) == {"status": "ok"}

    def test_pre_read_rejection_closes_the_connection(self, loopback):
        """A body the server refuses to read must not desync keep-alive:
        the 400 carries Connection: close so stale bytes die with it."""
        import http.client

        _setting, server, _client = loopback
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10.0)
        try:
            connection.putrequest("POST", "/v1/reencrypt")
            connection.putheader("Content-Length", "not-a-number")
            connection.endheaders()
            response = connection.getresponse()
            body = response.read()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            assert json.loads(body)["body"]["code"] == "invalid-request"
        finally:
            connection.close()

    def test_chunked_body_rejected_and_connection_closed(self, loopback):
        import http.client

        _setting, server, _client = loopback
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10.0)
        try:
            connection.putrequest("POST", "/v1/reencrypt")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            connection.send(b"5\r\nhello\r\n0\r\n\r\n")
            response = connection.getresponse()
            body = response.read()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            assert json.loads(body)["body"]["code"] == "invalid-request"
        finally:
            connection.close()

    def test_posted_error_message_is_rejected_not_executed(self, loopback):
        setting, server, _client = loopback
        text = to_wire(setting.group, RateLimitedError("not a request"))
        status, body = _raw_post(server.url, "/v1/grant", text.encode())
        assert status == 400
        assert json.loads(body)["body"]["code"] == "invalid-request"


class TestRemoteGatewayTransport:
    def test_unreachable_server_is_wire_transport_error(self, group):
        client = RemoteGateway("http://127.0.0.1:9", group, timeout=0.5)
        with pytest.raises(WireTransportError):
            client.snapshot()

    def test_non_wire_2xx_body_is_wire_transport_error(self, loopback):
        """A 200 whose body is not wire JSON (an interposed proxy, version
        skew) must read as a transport fault, not an invalid-request the
        gateway supposedly charged to the caller — /v1/health is exactly
        such a 200 non-wire body."""
        setting, server, _client = loopback
        # negotiate=False keeps the legacy unprefixed route family, so the
        # "health" op lands on the scheme-neutral /v1/health endpoint.
        client = RemoteGateway(server.url, setting.group, negotiate=False)
        with pytest.raises(WireTransportError):
            client._round_trip("GET", "health", None)

    def test_fetch_with_store_round_trips_records(self, pre_setting, group, rng):
        scheme, _kgc1, _kgc2, _alice, _bob = pre_setting
        from repro.service.gateway import ReEncryptionGateway

        store = EncryptedPhrStore()
        store.put("p", "labs", "e-1", b"blob-1")
        store.put("p", "notes", "e-2", b"blob-2")
        gateway = ReEncryptionGateway(scheme, shard_count=2, store=store)
        with GatewayHttpServer(gateway, group) as server:
            client = RemoteGateway(server.url, group)
            response = client.fetch(FetchRequest(tenant="t", patient="p"))
            assert sorted(r.blob for r in response.records) == [b"blob-1", b"blob-2"]
            one = client.fetch(FetchRequest(tenant="t", patient="p", entry_id="e-2"))
            assert one.records[0].blob == b"blob-2"
            with pytest.raises(EntryMissingError):
                client.fetch(FetchRequest(tenant="t", patient="p", entry_id="missing"))
        gateway.close()
