"""Multi-process shard fleet: the wire protocol at the shard boundary.

Previous PRs sharded the gateway *inside* one process — N
:class:`~repro.service.proxy.ProxyService` tables behind one
:class:`~repro.service.gateway.ReEncryptionGateway`.  This module
promotes the same split to process granularity: each shard is an
independent ``repro-pre serve --http`` worker process with its own
durable state directory, and a thin routing tier speaks the existing
HTTP/JSON wire to them.

Three pieces:

* :class:`FleetSupervisor` — spawns and supervises the shard worker
  processes (one single-shard gateway server each), parses their
  "listening on" banner for the bound ephemeral port, restarts a dead
  worker from its durable state directory, and hands out pooled
  :class:`~repro.service.wire.client.RemoteGateway` clients.
* :class:`StaticFleet` — the same surface over externally managed
  endpoints (tests, or shards on other machines).
* :class:`FleetGateway` — the routing tier.  It mirrors the in-process
  gateway's typed API (so :class:`~repro.service.wire.GatewayHttpServer`
  hosts it unchanged and end clients cannot tell the difference),
  routes every operation to the owning shard process via the shared
  :class:`~repro.service.router.ShardRouter` ring, propagates
  ``X-Repro-Trace`` so one waterfall shows router *and* shard spans,
  aggregates ``/v1/metrics`` across the shard processes, and resizes
  the fleet **without stopping traffic**: keys stream copy-then-cleanup
  between processes while requests keep flowing, with writes
  dual-applied to both ring generations for the duration.

Failure semantics: a shard process the router cannot reach surfaces as
:class:`~repro.service.wire.client.WireTransportError` (code
``wire-transport``, HTTP 503 at the routing tier) — never a hang — and
the supervisor restarts the worker from its state directory in the
background; durable grants survive the crash because every shard append
is flushed before the grant is acknowledged.
"""

from __future__ import annotations

import os
import re
import secrets
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

from repro.core.api import PreBackend, create_backend, resolve_backend
from repro.core.proxy import ProxyKey, ProxyKeyTable
from repro.service.gateway import (
    DelegationNotFoundError,
    FetchRequest,
    FetchResponse,
    GatewayError,
    GrantRequest,
    GrantResponse,
    InvalidRequestError,
    ReEncryptRequest,
    ReEncryptResponse,
    ResizeReport,
    RevokeRequest,
    RevokeResponse,
    StoreUnavailableError,
)
from repro.service.auth.credentials import TenantCredentialStore
from repro.service.metrics import GatewayMetrics, MetricsSnapshot, merge_snapshots
from repro.service.router import ShardRouter
from repro.service.telemetry import EventLog, Span, TraceContext, Tracer
from repro.service.wire.aio_client import connect_gateway
from repro.service.wire.client import RemoteGateway, WireTransportError

__all__ = ["FleetSupervisor", "StaticFleet", "FleetGateway"]

_BANNER = re.compile(r"listening on ((?:https?|muxs?)://\S+)")

# The routing tier's identity on its shard workers when per-worker HMAC
# credentials are enabled.  "admin" because the router drives the full
# surface (export during resize migration, not just the client ops).
ROUTER_TENANT = "fleet-router"

KeyIndex = tuple[str, str, str, str, str]


def _repro_env() -> dict[str, str]:
    """A child environment that can ``import repro`` like this process."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else os.pathsep.join([src_root, existing])
    return env


@dataclass
class _Worker:
    """One supervised shard process and what we know about it."""

    name: str
    url: str
    process: subprocess.Popen
    state_dir: Path | None
    output: deque = field(default_factory=lambda: deque(maxlen=200))
    restarts: int = 0


class FleetSupervisor:
    """Spawn, watch and restart the shard worker processes.

    Each worker is ``python -m repro.cli serve --http 0 --shards 1
    --shard <name>`` — a full single-shard gateway server on an
    ephemeral port, optionally durable under
    ``<state_root>/<name>/``.  The supervisor parses the worker's
    startup banner for the bound URL, keeps the last 200 output lines
    per worker for diagnostics, and exposes one pooled
    :class:`RemoteGateway` client per live worker.

    ``note_failure`` is the routing tier's crash report: when the named
    process is dead it is respawned **in the background** from the same
    state directory, so one unreachable shard degrades exactly the route
    keys it owns instead of stalling the caller.
    """

    def __init__(
        self,
        scheme_id: str,
        shard_count: int = 0,
        state_root: str | Path | None = None,
        group_name: str = "TOY",
        host: str = "127.0.0.1",
        rate_per_s: float | None = None,
        pool_size: int = 4,
        spawn_timeout: float = 60.0,
        event_log: EventLog | None = None,
        backoff_base: float = 0.5,
        backoff_max: float = 30.0,
        crash_loop_threshold: int = 5,
        crash_loop_window: float = 60.0,
        tls_cert: str | Path | None = None,
        tls_key: str | Path | None = None,
        worker_auth: bool = False,
        async_workers: bool = False,
    ):
        from repro.pairing.group import PairingGroup

        self.scheme_id = scheme_id
        self.group_name = group_name
        self.backend: PreBackend = create_backend(
            scheme_id, PairingGroup.shared(group_name)
        )
        self.host = host
        self.rate_per_s = rate_per_s
        self.pool_size = pool_size
        self.spawn_timeout = spawn_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.crash_loop_threshold = crash_loop_threshold
        self.crash_loop_window = crash_loop_window
        self.state_root = Path(state_root) if state_root is not None else None
        # Worker links: when tls_cert/tls_key are given the shard servers
        # terminate TLS and the supervisor's clients pin the cert file as
        # their CA (the dev self-signed cert is its own CA).  worker_auth
        # gives each worker its own tenants.json carrying one
        # supervisor-generated secret for ROUTER_TENANT, so a process that
        # finds a worker's ephemeral port still cannot speak to it.
        self.tls_cert = Path(tls_cert) if tls_cert is not None else None
        self.tls_key = Path(tls_key) if tls_key is not None else None
        if self.tls_key is not None and self.tls_cert is None:
            raise ValueError("tls_key given without tls_cert")
        self.worker_auth = worker_auth
        # Async workers run the asyncio server and print a mux:// banner,
        # so the supervisor's clients become framed mux links: one
        # multiplexed socket per worker instead of a connection pool.
        self.async_workers = async_workers
        self._secrets: dict[str, str] = {}
        self._auth_root: Path | None = None
        if worker_auth:
            self._auth_root = Path(tempfile.mkdtemp(prefix="repro-fleet-auth-"))
        self.events = event_log if event_log is not None else EventLog()
        self._workers: dict[str, _Worker] = {}
        self._clients: dict[str, RemoteGateway] = {}
        self._lock = threading.RLock()
        self._reviving: set[str] = set()
        self._failures: dict[str, list[float]] = {}
        self._broken: set[str] = set()
        self._closed = False
        # Injectable for the kill-loop regression tests.
        self._clock = time.monotonic
        self._sleep = time.sleep
        if shard_count:
            self.ensure_started(["shard-%02d" % i for i in range(shard_count)])

    # ------------------------------------------------------------- lifecycle

    def _worker_command(self, name: str) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--http",
            "0",
            "--host",
            self.host,
            "--group",
            self.group_name,
            "--scheme",
            self.scheme_id,
            "--shards",
            "1",
            "--shard",
            name,
        ]
        if self.state_root is not None:
            command += ["--state-dir", str(self.state_root / name)]
        if self.rate_per_s is not None:
            command += ["--rate", str(self.rate_per_s)]
        if self.tls_cert is not None:
            command += ["--tls-cert", str(self.tls_cert)]
            if self.tls_key is not None:
                command += ["--tls-key", str(self.tls_key)]
        if self.worker_auth:
            command += ["--tenant-config", str(self._credential_path(name))]
        if self.async_workers:
            command += ["--async"]
        return command

    def _credential_path(self, name: str) -> Path:
        assert self._auth_root is not None
        return self._auth_root / name / "tenants.json"

    def _write_worker_credentials(self, name: str) -> None:
        """(Re)write one worker's tenants.json before it spawns.

        The secret is minted once per worker *name* and reused across
        restarts, so the cached signing client stays valid over a
        supervisor-driven respawn.
        """
        secret = self._secrets.setdefault(name, secrets.token_hex(32))
        path = self._credential_path(name)
        if path.exists():
            path.unlink()
        store = TenantCredentialStore.initialize(path)
        store.add(ROUTER_TENANT, secret=secret, roles=("admin",))

    def _spawn(self, name: str) -> _Worker:
        state_dir = self.state_root / name if self.state_root is not None else None
        if state_dir is not None:
            state_dir.mkdir(parents=True, exist_ok=True)
        if self.worker_auth:
            self._write_worker_credentials(name)
        process = subprocess.Popen(
            self._worker_command(name),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=_repro_env(),
            text=True,
        )
        worker = _Worker(name=name, url="", process=process, state_dir=state_dir)
        ready = threading.Event()

        def drain() -> None:
            for line in process.stdout:
                worker.output.append(line.rstrip("\n"))
                if not ready.is_set():
                    match = _BANNER.search(line)
                    if match:
                        worker.url = match.group(1)
                        ready.set()
            process.stdout.close()

        thread = threading.Thread(
            target=drain, name="fleet-drain-%s" % name, daemon=True
        )
        thread.start()
        if not ready.wait(self.spawn_timeout) or not worker.url:
            process.kill()
            process.wait()
            raise WireTransportError(
                "shard %s did not report a listen address within %.0fs; output: %s"
                % (name, self.spawn_timeout, " | ".join(list(worker.output)[-5:]))
            )
        return worker

    def ensure_started(self, names: Sequence[str]) -> None:
        """Spawn workers for every name not already running."""
        for name in names:
            with self._lock:
                if self._closed:
                    raise WireTransportError("fleet supervisor is closed")
                # Explicit operator action: close the crash-loop breaker
                # and start fresh failure accounting for this shard.
                self._broken.discard(name)
                self._failures.pop(name, None)
                if name in self._workers and self._workers[name].process.poll() is None:
                    continue
            worker = self._spawn(name)
            with self._lock:
                self._workers[name] = worker
                stale = self._clients.pop(name, None)
            if stale is not None:
                stale.close()
            self.events.emit(
                "shard-started", shard=name, url=worker.url, pid=worker.process.pid
            )

    def retire(self, names: Sequence[str]) -> None:
        """Stop workers and delete their durable state (they own no keys now)."""
        for name in names:
            with self._lock:
                worker = self._workers.pop(name, None)
                client = self._clients.pop(name, None)
            if client is not None:
                client.close()
            if worker is None:
                continue
            worker.process.terminate()
            try:
                worker.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait()
            if worker.state_dir is not None:
                shutil.rmtree(worker.state_dir, ignore_errors=True)
            if self._auth_root is not None:
                shutil.rmtree(self._auth_root / name, ignore_errors=True)
                self._secrets.pop(name, None)
            self.events.emit("shard-retired", shard=name)

    def restart(self, name: str) -> None:
        """Respawn one (dead or alive) worker from its state dir; blocking."""
        with self._lock:
            worker = self._workers.get(name)
        if worker is None:
            raise InvalidRequestError("no shard named %r" % name)
        if worker.process.poll() is None:
            worker.process.terminate()
            try:
                worker.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait()
        replacement = self._spawn(name)
        replacement.restarts = worker.restarts + 1
        with self._lock:
            self._workers[name] = replacement
            stale = self._clients.pop(name, None)
        if stale is not None:
            stale.close()
        self.events.emit(
            "shard-restarted",
            shard=name,
            url=replacement.url,
            pid=replacement.process.pid,
            restarts=replacement.restarts,
        )

    def note_failure(self, name: str) -> bool:
        """React to a failed call: respawn in the background if dead.

        Returns True when a revival was started (or already under way).
        The caller's request still fails — restart happens off the
        request path so an unreachable shard costs one timeout, not a
        supervised respawn per request.

        Repeated failures inside ``crash_loop_window`` back off
        exponentially (``backoff_base * 2^(n-1)``, capped at
        ``backoff_max``; the first failure respawns immediately).  Once
        ``crash_loop_threshold`` failures accumulate in the window the
        breaker opens: the shard is left down, a ``shard-crash-loop``
        event is emitted, and no further respawns run until an operator
        calls :meth:`reset_breaker` (or :meth:`ensure_started` for the
        shard).  A crashing binary otherwise turns the supervisor into a
        fork bomb that steals CPU from every healthy shard.
        """
        with self._lock:
            worker = self._workers.get(name)
            if (
                self._closed
                or worker is None
                or worker.process.poll() is None
                or name in self._reviving
            ):
                return name in self._reviving
            if name in self._broken:
                return False
            now = self._clock()
            recent = [
                stamp
                for stamp in self._failures.get(name, [])
                if now - stamp < self.crash_loop_window
            ]
            recent.append(now)
            self._failures[name] = recent
            if len(recent) >= self.crash_loop_threshold:
                self._broken.add(name)
                self.events.emit(
                    "shard-crash-loop",
                    shard=name,
                    failures=len(recent),
                    window_s=self.crash_loop_window,
                )
                return False
            delay = 0.0
            if len(recent) > 1:
                delay = min(
                    self.backoff_base * (2 ** (len(recent) - 2)), self.backoff_max
                )
            self._reviving.add(name)

        def revive() -> None:
            try:
                if delay > 0:
                    self.events.emit("shard-respawn-backoff", shard=name, delay_s=delay)
                    self._sleep(delay)
                with self._lock:
                    if self._closed or name in self._broken:
                        return
                self.restart(name)
            except Exception as error:  # noqa: BLE001 - supervisor boundary
                self.events.emit("shard-restart-failed", shard=name, error=str(error))
            finally:
                with self._lock:
                    self._reviving.discard(name)

        threading.Thread(
            target=revive, name="fleet-revive-%s" % name, daemon=True
        ).start()
        return True

    def is_broken(self, name: str) -> bool:
        """True when the crash-loop breaker is open for ``name``."""
        with self._lock:
            return name in self._broken

    def reset_breaker(self, name: str) -> None:
        """Close the crash-loop breaker and forget the failure history.

        Does not restart the shard by itself — call :meth:`restart` or
        :meth:`ensure_started` afterwards (the latter clears the breaker
        automatically for the names it spawns).
        """
        with self._lock:
            self._broken.discard(name)
            self._failures.pop(name, None)

    def kill(self, name: str) -> None:
        """SIGKILL one worker (crash-recovery tests); no cleanup runs."""
        with self._lock:
            worker = self._workers[name]
        worker.process.kill()
        worker.process.wait()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            workers = list(self._workers.values())
            clients = list(self._clients.values())
            self._workers.clear()
            self._clients.clear()
        for client in clients:
            client.close()
        for worker in workers:
            if worker.process.poll() is None:
                worker.process.terminate()
        for worker in workers:
            try:
                worker.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait()
        if self._auth_root is not None:
            shutil.rmtree(self._auth_root, ignore_errors=True)

    # --------------------------------------------------------------- clients

    @property
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._workers)

    def alive(self, name: str) -> bool:
        with self._lock:
            worker = self._workers.get(name)
        return worker is not None and worker.process.poll() is None

    def url_of(self, name: str) -> str:
        with self._lock:
            return self._workers[name].url

    def output_of(self, name: str) -> list[str]:
        with self._lock:
            return list(self._workers[name].output)

    def client(self, name: str) -> RemoteGateway:
        """The pooled wire client for one worker (rebuilt after respawn)."""
        with self._lock:
            client = self._clients.get(name)
            if client is not None:
                return client
            worker = self._workers.get(name)
            if worker is None:
                raise WireTransportError("no shard named %r" % name)
            client = connect_gateway(
                worker.url,
                self.backend,
                pool_size=self.pool_size,
                trace_requests=False,
                tenant=ROUTER_TENANT if self.worker_auth else None,
                secret=self._secrets.get(name) if self.worker_auth else None,
                tls_ca=str(self.tls_cert) if self.tls_cert is not None else None,
            )
            self._clients[name] = client
            return client


class StaticFleet:
    """The supervisor surface over endpoints someone else manages.

    ``endpoints`` maps shard name to base URL.  Useful for tests (fake
    or hand-started servers) and for shards on other machines.  Without
    a ``spawner`` the fleet cannot grow, so a resize that adds shards
    raises; ``note_failure`` never restarts anything.
    """

    def __init__(
        self,
        context,
        endpoints: dict[str, str],
        pool_size: int = 2,
        event_log: EventLog | None = None,
        tenant: str | None = None,
        secret: str | None = None,
        tls_ca: str | None = None,
    ):
        if not endpoints:
            raise ValueError("need at least one endpoint")
        self.backend = resolve_backend(context)
        self.pool_size = pool_size
        self.events = event_log if event_log is not None else EventLog()
        self.tenant = tenant
        self._secret = secret
        self.tls_ca = tls_ca
        self._endpoints = dict(endpoints)
        self._clients: dict[str, RemoteGateway] = {}
        self._lock = threading.Lock()

    @property
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._endpoints)

    def alive(self, name: str) -> bool:
        with self._lock:
            return name in self._endpoints

    def client(self, name: str) -> RemoteGateway:
        with self._lock:
            client = self._clients.get(name)
            if client is None:
                url = self._endpoints.get(name)
                if url is None:
                    raise WireTransportError("no shard named %r" % name)
                client = self._clients[name] = connect_gateway(
                    url,
                    self.backend,
                    pool_size=self.pool_size,
                    trace_requests=False,
                    tenant=self.tenant,
                    secret=self._secret,
                    tls_ca=self.tls_ca,
                )
            return client

    def ensure_started(self, names: Sequence[str]) -> None:
        missing = [name for name in names if name not in self._endpoints]
        if missing:
            raise InvalidRequestError(
                "static fleet cannot start shards %s; register their endpoints"
                % ", ".join(missing)
            )

    def retire(self, names: Sequence[str]) -> None:
        for name in names:
            with self._lock:
                self._endpoints.pop(name, None)
                client = self._clients.pop(name, None)
            if client is not None:
                client.close()

    def note_failure(self, name: str) -> bool:
        self.events.emit("shard-unreachable", shard=name, supervised=False)
        return False

    def kill(self, name: str) -> None:
        raise InvalidRequestError("static fleet does not own shard processes")

    def close(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.close()


class _AggregatingTracer(Tracer):
    """A tracer whose lookups merge the shard processes' spans.

    The routing tier records its own spans locally; when someone asks
    for a trace the router *has* (so random probes stay cheap), every
    shard's ``/v1/trace/<id>`` is consulted and the remote spans are
    appended — one waterfall across both tiers.
    """

    def __init__(self, clients: Callable[[], list[RemoteGateway]]):
        super().__init__()
        self._clients = clients

    def trace(self, trace_id: str) -> list[Span]:
        spans = super().trace(trace_id)
        if not spans:
            return spans
        for client in self._clients():
            try:
                spans.extend(client.fetch_trace(trace_id))
            except GatewayError:
                continue
        return spans


@dataclass
class _Migration:
    """Live resize state: both ring generations plus write bookkeeping.

    ``overrides`` holds the key indexes written (granted or revoked)
    while the migration ran — the copy and cleanup sweeps skip them,
    because the dual-applied write already put the latest truth on both
    owners.  ``copied`` holds what the copy sweep moved, so cleanup can
    distinguish "already at its new home" from "appeared after the copy
    sweep passed" (the latter is re-homed before the old copy is
    revoked).
    """

    old_router: ShardRouter
    new_router: ShardRouter
    overrides: set = field(default_factory=set)
    copied: set = field(default_factory=set)


class FleetGateway:
    """The routing tier over a fleet of shard *processes*.

    Exposes the in-process gateway's typed operations (grant / revoke /
    reencrypt / reencrypt_batch / fetch / resize plus the observability
    surface), so :class:`~repro.service.wire.GatewayHttpServer` hosts it
    unchanged and :class:`~repro.service.wire.client.RemoteGateway`
    clients cannot tell it from a single process.  Each operation routes
    on the same (delegator domain, delegator, type) triple the
    in-process router uses, then crosses the wire to the owning shard
    process with the caller's trace context in ``X-Repro-Trace``.

    Resize migrates keys **without stopping traffic**: reads keep
    routing on the current ring the whole time, writes are dual-applied
    to both ring generations, and keys stream old-owner → new-owner in
    two sweeps (copy, then swap, then cleanup-and-revoke).  A request
    that races the swap is correct in either order because the key
    exists at both homes between its copy and its cleanup.
    """

    def __init__(
        self,
        fleet,
        store=None,
        event_log: EventLog | None = None,
        clock: Callable[[], float] = time.monotonic,
        telemetry: bool = True,
        migration_chunk_size: int = 64,
    ):
        if migration_chunk_size < 1:
            raise ValueError("migration_chunk_size must be positive")
        self.fleet = fleet
        self.backend: PreBackend = fleet.backend
        self.store = store
        self.clock = clock
        self.migration_chunk_size = migration_chunk_size
        # Wire-call accounting of the most recent resize migration:
        # {"export_calls", "grant_calls", "grant_keys", "revoke_calls"}.
        self.last_migration_stats: dict[str, int] | None = None
        self.metrics = GatewayMetrics(clock=clock)
        self.events = event_log if event_log is not None else EventLog()
        self.tracer: Tracer | None = (
            _AggregatingTracer(self._live_clients) if telemetry else None
        )
        names = fleet.names
        if not names:
            raise ValueError("fleet has no shards")
        self._router = ShardRouter(names)
        self._resize_lock = threading.Lock()
        self._migration_mutex = threading.Lock()
        self._migration: _Migration | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="fleet-gw"
        )

    # ------------------------------------------------------------- internals

    def _live_clients(self) -> list[RemoteGateway]:
        clients = []
        for name in self._router.shards:
            try:
                clients.append(self.fleet.client(name))
            except GatewayError:
                continue
        return clients

    def _span(self, trace: TraceContext | None, name: str, **attributes):
        if self.tracer is None or trace is None:
            return nullcontext(None)
        return self.tracer.span(trace, name, attributes or None)

    def _owner(self, delegator_domain: str, delegator: str, type_label: str) -> str:
        return self._router.shard_for(delegator_domain, delegator, type_label)

    def _shard_call(self, op: str, name: str, call, trace: TraceContext | None):
        """One wire round trip to a shard, traced and failure-accounted.

        ``call(client, trace)`` does the actual client call.  Transport
        failures become a routing-tier ``wire-transport`` error (HTTP
        503 for hosted deployments) and wake the supervisor's background
        revival — the taxonomy never hangs or leaks a stack trace.
        """
        with self._span(trace, "shard-call", op=op, shard=name) as span:
            try:
                client = self.fleet.client(name)
                return call(client, span.context if span is not None else None)
            except WireTransportError as error:
                self.metrics.observe_rejection(
                    op=op, code=WireTransportError.code
                )
                self.events.emit(
                    "shard-unreachable", shard=name, op=op, error=str(error)
                )
                self.fleet.note_failure(name)
                raise WireTransportError(
                    "shard %s unreachable during %s: %s" % (name, op, error)
                ) from error

    def _write_targets(self, domain: str, delegator: str, type_label: str) -> list[str]:
        """Owners a write must reach: both ring generations mid-resize.

        Caller holds ``_migration_mutex``.
        """
        migration = self._migration
        if migration is None:
            return [self._owner(domain, delegator, type_label)]
        owners = [
            migration.old_router.shard_for(domain, delegator, type_label),
            migration.new_router.shard_for(domain, delegator, type_label),
        ]
        return list(dict.fromkeys(owners))

    # ------------------------------------------------------------ operations

    def _write(self, op: str, index: KeyIndex, do_call, trace) -> list:
        """Run a write (grant/revoke) under the resize discipline.

        Fast path: no resize in flight — one owner, no serialization.
        Mid-resize the whole write (targets, override record, wire
        calls) runs under the migration mutex, so it cannot interleave
        with the copy/cleanup sweeps' check-then-copy of the same key.
        A resize *starting* during a fast-path call is caught by the
        post-call recheck, which re-applies the write under the
        migration discipline (both ops are idempotent per shard), so a
        copied key can never resurrect a racing revoke.  Returns the
        ``(shard, response)`` pairs of the applied calls.
        """
        domain, delegator, _dd, _de, type_label = index
        applied: list = []
        with self._migration_mutex:
            migrating = self._migration is not None
            if not migrating:
                name = self._owner(domain, delegator, type_label)
        if not migrating:
            applied.append((name, self._shard_call(op, name, do_call, trace)))
            with self._migration_mutex:
                if self._migration is None:
                    return applied
            # A resize began while the call was in flight; fall through
            # and re-apply to both ring generations (idempotent per
            # shard), keeping the fast-path outcome in ``applied``.
        with self._migration_mutex:
            targets = self._write_targets(domain, delegator, type_label)
            if self._migration is not None:
                self._migration.overrides.add(index)
            applied.extend(
                (name, self._shard_call(op, name, do_call, trace))
                for name in targets
            )
        return applied

    def grant(
        self, request: GrantRequest, trace: TraceContext | None = None
    ) -> GrantResponse:
        key = request.proxy_key
        applied = self._write(
            "grant",
            ProxyKeyTable.index_of(key),
            lambda client, t: client.grant(request, trace=t),
            trace,
        )
        # Workers name their single internal shard "shard-00"; report the
        # fleet-level worker name instead, which is what callers route on.
        return GrantResponse(shard=applied[-1][0])

    def revoke(
        self, request: RevokeRequest, trace: TraceContext | None = None
    ) -> RevokeResponse:
        index: KeyIndex = (
            request.delegator_domain,
            request.delegator,
            request.delegatee_domain,
            request.delegatee,
            request.type_label,
        )
        applied = self._write(
            "revoke",
            index,
            lambda client, t: client.revoke(request, trace=t),
            trace,
        )
        removed = any(response.removed for _, response in applied)
        shard = next(
            (name for name, response in applied if response.removed),
            applied[-1][0],
        )
        return RevokeResponse(shard=shard, removed=removed)

    def reencrypt(
        self, request: ReEncryptRequest, trace: TraceContext | None = None
    ) -> ReEncryptResponse:
        ciphertext = request.ciphertext
        route = (ciphertext.domain, ciphertext.identity, ciphertext.type_label)
        name = self._owner(*route)
        try:
            response = self._shard_call(
                "reencrypt",
                name,
                lambda client, t: client.reencrypt(request, trace=t),
                trace,
            )
        except DelegationNotFoundError:
            # A resize swap can land between our owner lookup and the wire
            # call; if the cleanup sweep already revoked the stale copy the
            # old owner answers no-delegation.  Re-resolve on the current
            # ring and retry once — a genuinely missing delegation resolves
            # to the same owner and re-raises.
            current = self._owner(*route)
            if current == name:
                raise
            name = current
            response = self._shard_call(
                "reencrypt",
                name,
                lambda client, t: client.reencrypt(request, trace=t),
                trace,
            )
        return replace(response, shard=name)

    def reencrypt_batch(
        self,
        requests: Sequence[ReEncryptRequest],
        trace: TraceContext | None = None,
    ) -> list[ReEncryptResponse]:
        """Fan the batch out to owning shard processes; order preserved.

        Each shard receives one wire batch with its items; shards work
        concurrently and the responses are reassembled by submission
        position.  The single-owner case stays one round trip.
        """
        if not requests:
            raise InvalidRequestError("empty batch")
        by_shard: dict[str, list[int]] = {}
        for position, request in enumerate(requests):
            ciphertext = request.ciphertext
            name = self._owner(
                ciphertext.domain, ciphertext.identity, ciphertext.type_label
            )
            by_shard.setdefault(name, []).append(position)

        def shard_batch(name: str, positions: list[int]) -> list[ReEncryptResponse]:
            subset = [requests[position] for position in positions]
            try:
                responses = self._shard_call(
                    "reencrypt-batch",
                    name,
                    lambda client, t: client.reencrypt_batch(subset, trace=t),
                    trace,
                )
            except DelegationNotFoundError:
                # Stale routing during a resize swap (see reencrypt): fall
                # back to per-item routing on the current ring, which
                # re-raises for any delegation that truly does not exist.
                return [self.reencrypt(request, trace) for request in subset]
            return [replace(response, shard=name) for response in responses]

        if len(by_shard) == 1:
            ((name, positions),) = by_shard.items()
            return shard_batch(name, positions)
        with self._span(trace, "batch-fanout", shards=len(by_shard)):
            futures = {
                name: self._executor.submit(shard_batch, name, positions)
                for name, positions in by_shard.items()
            }
            results: list[ReEncryptResponse | None] = [None] * len(requests)
            first_error: BaseException | None = None
            for name, positions in by_shard.items():
                try:
                    responses = futures[name].result()
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = error
                    continue
                for position, response in zip(positions, responses):
                    results[position] = response
            if first_error is not None:
                raise first_error
        return results  # type: ignore[return-value]

    def fetch(
        self, request: FetchRequest, trace: TraceContext | None = None
    ) -> FetchResponse:
        """Serve reads from the routing tier's own PHR store.

        Ciphertext blobs are not sharded (only proxy-key state is), so
        fetch never crosses to a shard process.
        """
        from repro.phr.store import EntryNotFoundError
        from repro.service.gateway import EntryMissingError

        if self.store is None:
            self.metrics.observe_rejection(
                op="fetch", tenant=request.tenant, code=StoreUnavailableError.code
            )
            raise StoreUnavailableError("fleet gateway has no PHR store attached")
        start = self.clock()
        try:
            with self._span(trace, "store-read", patient=request.patient):
                if request.entry_id is not None:
                    records = (self.store.get(request.patient, request.entry_id),)
                else:
                    records = tuple(
                        self.store.entries_for(request.patient, request.category)
                    )
        except EntryNotFoundError as error:
            self.metrics.observe_rejection(
                op="fetch", tenant=request.tenant, code=EntryMissingError.code
            )
            raise EntryMissingError(str(error)) from error
        self.metrics.observe(
            "fetch", (self.clock() - start) * 1000, tenant=request.tenant
        )
        return FetchResponse(records=records)

    # ------------------------------------------------------------- elasticity

    def resize(
        self,
        shard_count: int,
        tenant: str = "admin",
        trace: TraceContext | None = None,
    ) -> ResizeReport:
        """Re-shard the process fleet while traffic continues.

        Four steps, none of which stops reads:

        1. **Start** the added worker processes (empty state dirs).
        2. **Copy**: every misplaced key streams from its old owner to
           its new one.  From this point until the end, writes
           dual-apply to both ring generations and are skipped by the
           sweeps (``overrides``).
        3. **Swap** the router — new requests route on the new ring,
           which owns every copied key.
        4. **Cleanup**: re-enumerate the old owners, re-home any key
           the copy sweep missed (installed concurrently with step 2's
           enumeration), then revoke the stale copies and retire the
           removed worker processes (deleting their state dirs).

        Keys exist at *both* homes between copy and cleanup, so a
        request racing the swap finds its key on whichever ring it
        routed with; install-before-revoke means a crash mid-resize
        loses nothing that a restart-time re-home cannot repair.
        """
        if shard_count < 1:
            raise InvalidRequestError("shard_count must be positive")
        with self._resize_lock:
            self.last_migration_stats = {
                "export_calls": 0,
                "grant_calls": 0,
                "grant_keys": 0,
                "revoke_calls": 0,
            }
            start = self.clock()
            old_names = self._router.shards
            new_names = ["shard-%02d" % i for i in range(shard_count)]
            added = tuple(name for name in new_names if name not in old_names)
            removed = tuple(name for name in old_names if name not in new_names)
            new_router = ShardRouter(new_names)
            with self._span(
                trace, "fleet-resize", old=len(old_names), new=shard_count
            ):
                self.fleet.ensure_started(added)
                migration = _Migration(old_router=self._router, new_router=new_router)
                with self._migration_mutex:
                    self._migration = migration
                moved = 0
                try:
                    moved += self._copy_sweep(migration, old_names, tenant, trace)
                    with self._migration_mutex:
                        self._router = new_router
                    moved += self._cleanup_sweep(migration, old_names, tenant, trace)
                finally:
                    with self._migration_mutex:
                        self._migration = None
            self.fleet.retire(removed)
            elapsed_ms = (self.clock() - start) * 1000
            self.metrics.observe("resize", elapsed_ms, tenant=tenant)
            self.metrics.observe_resize(moved)
            self.events.emit(
                "fleet-resized",
                old=len(old_names),
                new=shard_count,
                moved=moved,
                added=list(added),
                removed=list(removed),
            )
            return ResizeReport(
                old_shard_count=len(old_names),
                new_shard_count=shard_count,
                keys_moved=moved,
                shards_added=added,
                shards_removed=removed,
                elapsed_ms=elapsed_ms,
            )

    def _misplaced(self, name: str, migration: _Migration, trace) -> list[ProxyKey]:
        """Keys on shard ``name`` that the new ring homes elsewhere."""
        keys = self._shard_call(
            "export", name, lambda client, t: client.list_keys(trace=t), trace
        )
        stats = self.last_migration_stats
        if stats is not None:
            stats["export_calls"] += 1
        misplaced = []
        for key in keys:
            owner = migration.new_router.shard_for(
                key.delegator_domain, key.delegator, key.type_label
            )
            if owner != name:
                misplaced.append(key)
        return misplaced

    def _by_new_owner(
        self, migration: _Migration, keys: list[ProxyKey]
    ) -> dict[str, list[ProxyKey]]:
        """Group misplaced keys by the shard the new ring homes them on."""
        grouped: dict[str, list[ProxyKey]] = {}
        for key in keys:
            owner = migration.new_router.shard_for(
                key.delegator_domain, key.delegator, key.type_label
            )
            grouped.setdefault(owner, []).append(key)
        return grouped

    def _grant_chunk(self, owner: str, keys: list[ProxyKey], tenant: str, trace):
        """Install a chunk of re-homed keys with one wire round trip."""
        self._shard_call(
            "grant",
            owner,
            lambda client, t, keys=keys: client.grant_batch(
                [GrantRequest(tenant=tenant, proxy_key=key) for key in keys],
                trace=t,
            ),
            trace,
        )
        stats = self.last_migration_stats
        if stats is not None:
            stats["grant_calls"] += 1
            stats["grant_keys"] += len(keys)

    def _copy_sweep(
        self, migration: _Migration, old_names: list[str], tenant: str, trace
    ) -> int:
        moved = 0
        chunk_size = self.migration_chunk_size
        for name in old_names:
            grouped = self._by_new_owner(
                migration, self._misplaced(name, migration, trace)
            )
            for owner, keys in grouped.items():
                for at in range(0, len(keys), chunk_size):
                    with self._migration_mutex:
                        chunk = []
                        for key in keys[at : at + chunk_size]:
                            index = ProxyKeyTable.index_of(key)
                            if index in migration.overrides:
                                # A live write already placed the latest truth.
                                continue
                            migration.copied.add(index)
                            chunk.append(key)
                        if chunk:
                            self._grant_chunk(owner, chunk, tenant, trace)
                            moved += len(chunk)
        return moved

    def _cleanup_sweep(
        self, migration: _Migration, old_names: list[str], tenant: str, trace
    ) -> int:
        moved = 0
        chunk_size = self.migration_chunk_size
        for name in old_names:
            grouped = self._by_new_owner(
                migration, self._misplaced(name, migration, trace)
            )
            for owner, keys in grouped.items():
                for at in range(0, len(keys), chunk_size):
                    with self._migration_mutex:
                        chunk = []
                        revokes = []
                        for key in keys[at : at + chunk_size]:
                            index = ProxyKeyTable.index_of(key)
                            if index in migration.overrides:
                                # The live write already reached both
                                # generations (a dual-applied revoke must
                                # stay revoked).
                                continue
                            if index not in migration.copied:
                                # Landed on the old owner after the copy
                                # sweep's enumeration passed it: re-home
                                # before revoking.
                                migration.copied.add(index)
                                chunk.append(key)
                            revokes.append(index)
                        if chunk:
                            self._grant_chunk(owner, chunk, tenant, trace)
                            moved += len(chunk)
                        for index in revokes:
                            self._shard_call(
                                "revoke",
                                name,
                                lambda client, t, index=index: client.revoke(
                                    RevokeRequest(
                                        tenant=tenant,
                                        delegator_domain=index[0],
                                        delegator=index[1],
                                        delegatee_domain=index[2],
                                        delegatee=index[3],
                                        type_label=index[4],
                                    ),
                                    trace=t,
                                ),
                                trace,
                            )
                            stats = self.last_migration_stats
                            if stats is not None:
                                stats["revoke_calls"] += 1
        return moved

    # ---------------------------------------------------------- observability

    @property
    def shard_names(self) -> list[str]:
        return self._router.shards

    def key_count(self) -> int:
        return sum(self.shard_key_counts().values())

    def shard_key_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for name in self._router.shards:
            counts[name] = len(
                self._shard_call(
                    "export", name, lambda client, t: client.list_keys(), None
                )
            )
        return counts

    def list_keys(self) -> list[ProxyKey]:
        keys: list[ProxyKey] = []
        for name in self._router.shards:
            keys.extend(
                self._shard_call(
                    "export", name, lambda client, t: client.list_keys(), None
                )
            )
        return keys

    def snapshot(self) -> MetricsSnapshot:
        """One fleet-wide view: every live shard's snapshot plus our own.

        The routing tier's local metrics only count what shards cannot
        see (fetches served from the router's store, transport
        failures), so the merge never double-counts an operation.
        """
        parts: dict[str, MetricsSnapshot] = {}
        for name in self._router.shards:
            try:
                parts[name] = self.fleet.client(name).snapshot()
            except GatewayError as error:
                self.events.emit(
                    "shard-snapshot-failed", shard=name, error=str(error)
                )
                self.fleet.note_failure(name)
        parts["router"] = self.metrics.snapshot()
        return merge_snapshots(parts)

    def close(self) -> None:
        self._executor.shutdown(wait=False)
        self.fleet.close()

    def __enter__(self) -> "FleetGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
