"""A threshold KGC: key extraction without a single point of escrow.

Section 4.2 of the paper assumes semi-trusted KGCs and defers the IBE key
escrow problem to "standard techniques (such as secret sharing)".  This
module implements that mitigation concretely:

* at setup, the master secret ``alpha`` is Shamir-shared among ``n``
  key-share servers with threshold ``t`` — **no party ever holds alpha**
  (the dealer is modelled as a trusted one-shot ceremony that forgets it);
* to extract a key for ``id``, each contacted server returns the partial
  key ``H1(id)^{alpha_i}``;
* any ``t`` partials combine via Lagrange interpolation *in the exponent*
  into the standard Boneh--Franklin key ``H1(id)^alpha``, so the combined
  keys are byte-identical to single-KGC keys and every scheme in this
  library (including the paper's PRE) works on top unchanged.

Fewer than ``t`` colluding servers learn nothing about ``alpha`` —
demonstrated, not assumed, in ``tests/test_threshold.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.curve import Point
from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.keys import IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.math.shamir import Share, lagrange_coefficient_at_zero, split_secret
from repro.pairing.group import PairingGroup

__all__ = ["ThresholdKgc", "KeyShareServer", "PartialKey"]


@dataclass(frozen=True)
class PartialKey:
    """One server's contribution ``H1(id)^{alpha_i}``."""

    server_index: int
    identity: str
    point: Point


class KeyShareServer:
    """One of the ``n`` key-share servers; holds a single Shamir share."""

    def __init__(self, group: PairingGroup, domain: str, share: Share):
        self._group = group
        self._ibe = BonehFranklinIbe(group, domain)
        self._share = share
        self.index = share.index

    def extract_partial(self, identity: str) -> PartialKey:
        """``H1(id)^{alpha_i}`` — reveals nothing about other identities."""
        pk_id = self._ibe.public_key_of(identity)
        return PartialKey(
            server_index=self.index,
            identity=identity,
            point=self._group.g1_mul(pk_id, self._share.value),
        )

    def reveal_share_for_test(self) -> Share:
        """Test-only accessor used by the collusion demonstrations."""
        return self._share


class ThresholdKgc:
    """A ``t``-of-``n`` distributed KGC producing standard BF keys."""

    def __init__(
        self,
        group: PairingGroup,
        domain: str,
        threshold: int,
        server_count: int,
        rng: RandomSource | None = None,
    ):
        if threshold < 1 or server_count < threshold:
            raise ValueError("need 1 <= threshold <= server_count")
        rng = rng or system_random()
        self.group = group
        self.domain = domain
        self.threshold = threshold
        # Dealer ceremony: sample alpha, publish pk, share alpha, forget it.
        alpha = group.random_scalar(rng)
        public_key = group.g1_mul(group.generator, alpha)
        shares = split_secret(alpha, threshold, server_count, group.order, rng)
        self.params = IbeParams(
            group_name=group.params.name, domain=domain, public_key=public_key
        )
        self.servers = [KeyShareServer(group, domain, share) for share in shares]
        # alpha goes out of scope here; only the shares survive.

    def extract(self, identity: str, server_indices: list[int] | None = None) -> IbePrivateKey:
        """Gather ``t`` partial keys and combine them.

        ``server_indices`` selects which servers to contact (default: the
        first ``t``); any ``t``-subset yields the identical key.
        """
        if server_indices is None:
            server_indices = [server.index for server in self.servers[: self.threshold]]
        chosen = [server for server in self.servers if server.index in server_indices]
        if len(chosen) < self.threshold:
            raise ValueError(
                "need %d servers, selected only %d" % (self.threshold, len(chosen))
            )
        partials = [server.extract_partial(identity) for server in chosen]
        return self.combine(partials)

    def combine(self, partials: list[PartialKey]) -> IbePrivateKey:
        """Lagrange interpolation in the exponent: ``prod_i partial_i^{l_i(0)}``."""
        if len(partials) < self.threshold:
            raise ValueError(
                "need %d partial keys, got %d" % (self.threshold, len(partials))
            )
        identities = {partial.identity for partial in partials}
        if len(identities) != 1:
            raise ValueError("partial keys are for different identities")
        indices = [partial.server_index for partial in partials]
        if len(set(indices)) != len(indices):
            raise ValueError("duplicate server contributions")
        combined = self.group.g1_identity()
        for partial in partials:
            coefficient = lagrange_coefficient_at_zero(
                indices, partial.server_index, self.group.order
            )
            combined = self.group.g1_add(
                combined, self.group.g1_mul(partial.point, coefficient)
            )
        return IbePrivateKey(
            domain=self.domain, identity=partials[0].identity, point=combined
        )
