"""Tests for the durable file-backed PHR store."""

import pytest

from repro.math.drbg import HmacDrbg
from repro.phr.generator import PhrGenerator
from repro.phr.store import (
    EntryNotFoundError,
    FilePhrStore,
    StoreSchemeMismatchError,
)


@pytest.fixture()
def store(tmp_path):
    return FilePhrStore(tmp_path / "store")


class TestBasicOperations:
    def test_put_get(self, store):
        store.put("alice", "labs", "e1", b"ciphertext")
        record = store.get("alice", "e1")
        assert record.blob == b"ciphertext"
        assert record.category == "labs"
        assert record.patient == "alice"

    def test_missing(self, store):
        with pytest.raises(EntryNotFoundError):
            store.get("alice", "nope")

    def test_bytes_only(self, store):
        with pytest.raises(TypeError):
            store.put("alice", "labs", "e1", "text")

    def test_overwrite(self, store):
        store.put("alice", "labs", "e1", b"v1")
        store.put("alice", "labs", "e1", b"v2")
        assert store.get("alice", "e1").blob == b"v2"
        assert store.record_count() == 1

    def test_delete(self, store):
        store.put("alice", "labs", "e1", b"x")
        assert store.delete("alice", "e1")
        assert not store.delete("alice", "e1")
        with pytest.raises(EntryNotFoundError):
            store.get("alice", "e1")

    def test_filters_and_accounting(self, store):
        store.put("alice", "labs", "e1", b"aaaa")
        store.put("alice", "vitals", "e2", b"bb")
        store.put("bob", "labs", "e3", b"c")
        assert [r.entry_id for r in store.entries_for("alice")] == ["e1", "e2"]
        assert [r.entry_id for r in store.entries_for("alice", "labs")] == ["e1"]
        assert store.patients() == ["alice", "bob"]
        assert store.record_count() == 3
        assert store.size_bytes() == 7

    def test_pipe_in_patient_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("a|b", "labs", "e1", b"x")

    def test_path_traversal_neutralised(self, store, tmp_path):
        store.put("alice", "labs", "../escape", b"x")
        # The blob must stay inside the store root.
        stray = tmp_path / "escape.bin"
        assert not stray.exists()
        assert store.get("alice", "../escape").blob == b"x"


class TestDurability:
    def test_reopen_preserves_records(self, tmp_path):
        first = FilePhrStore(tmp_path / "store")
        first.put("alice", "labs", "e1", b"persisted")
        second = FilePhrStore(tmp_path / "store")
        assert second.get("alice", "e1").blob == b"persisted"
        assert second.record_count() == 1

    def test_reopen_after_delete(self, tmp_path):
        first = FilePhrStore(tmp_path / "store")
        first.put("alice", "labs", "e1", b"x")
        first.delete("alice", "e1")
        second = FilePhrStore(tmp_path / "store")
        assert second.record_count() == 0


class TestProxyIntegration:
    def test_category_proxy_over_file_store(self, tmp_path, pre_setting, group, rng):
        """A CategoryProxy backed by the durable store serves requests."""
        from repro.phr.actors import CategoryProxy, Patient, Requester

        scheme, kgc1, kgc2, alice_key, bob_key = pre_setting
        alice = Patient(
            name="alice", params=kgc1.params, private_key=alice_key, group=group, rng=rng
        )
        bob = Requester(
            name="bob", role="doctor", params=kgc2.params, private_key=bob_key, group=group
        )
        proxy = CategoryProxy(
            category="lab-results",
            group=group,
            scheme=scheme,
            store=FilePhrStore(tmp_path / "labs"),
        )
        entry = PhrGenerator(HmacDrbg("file-store"), "alice").entry_for("lab-results")
        proxy.accept_record("alice", entry.entry_id, alice.encrypt_entry(entry))
        proxy.install_grant(alice.make_grant(bob, "lab-results"))

        served = proxy.serve("alice", entry.entry_id, "KGC2", "bob")
        assert bob.read_entry(served) == entry

        # The durable copy survives a "restart" of the proxy.
        reopened = CategoryProxy(
            category="lab-results",
            group=group,
            scheme=scheme,
            store=FilePhrStore(tmp_path / "labs"),
        )
        reopened.install_grant(alice.make_grant(bob, "lab-results"))
        assert bob.read_entry(
            reopened.serve("alice", entry.entry_id, "KGC2", "bob")
        ) == entry


class TestIndexV2:
    def test_v1_flat_index_migrates_on_open(self, tmp_path):
        """A pre-sizes index (flat key->category map) upgrades in place."""
        import json

        root = tmp_path / "store"
        blob_dir = root / "blobs" / "alice"
        blob_dir.mkdir(parents=True)
        (blob_dir / "e1.bin").write_bytes(b"four")
        (blob_dir / "e2.bin").write_bytes(b"sixsix")
        (root / "index.json").write_text(
            json.dumps({"alice|e1": "labs", "alice|e2": "meds"})
        )

        store = FilePhrStore(root)
        assert store.record_count() == 2
        assert store.size_bytes() == 10
        assert store.get("alice", "e1").category == "labs"
        # The on-disk index is rewritten in the versioned format.
        upgraded = json.loads((root / "index.json").read_text())
        assert upgraded["version"] == FilePhrStore.INDEX_VERSION
        assert upgraded["entries"]["alice|e2"] == {"category": "meds", "size": 6}

    def test_size_bytes_needs_no_filesystem(self, tmp_path):
        """Sizes come from the index: accounting survives blob deletion."""
        store = FilePhrStore(tmp_path / "store")
        store.put("alice", "labs", "e1", b"12345")
        (tmp_path / "store" / "blobs" / "alice" / "e1.bin").unlink()
        assert store.size_bytes() == 5

    def test_headers_do_not_read_blobs(self, tmp_path):
        store = FilePhrStore(tmp_path / "store")
        store.put("alice", "labs", "e1", b"aaa")
        store.put("alice", "meds", "e2", b"bb")
        (tmp_path / "store" / "blobs" / "alice" / "e1.bin").unlink()  # prove no read
        assert store.headers_for("alice") == [("e1", "labs", 3), ("e2", "meds", 2)]
        assert store.headers_for("alice", "meds") == [("e2", "meds", 2)]

    def test_v2_round_trips_across_reopen(self, tmp_path):
        first = FilePhrStore(tmp_path / "store")
        first.put("alice", "labs", "e1", b"xyz")
        second = FilePhrStore(tmp_path / "store")
        assert second.size_bytes() == 3
        assert second.entries_for("alice")[0].blob == b"xyz"


class TestSchemeSealing:
    def test_stamp_round_trips(self, tmp_path):
        """A declared scheme is written to disk and accepted on reopen."""
        import json

        first = FilePhrStore(tmp_path / "store", scheme_id="tipre/v1")
        first.put("alice", "labs", "e1", b"x")
        header = json.loads((tmp_path / "store" / "index.json").read_text())
        assert header["version"] == FilePhrStore.INDEX_VERSION
        assert header["scheme"] == "tipre/v1"
        second = FilePhrStore(tmp_path / "store", scheme_id="tipre/v1")
        assert second.get("alice", "e1").blob == b"x"

    def test_cross_scheme_open_raises(self, tmp_path):
        first = FilePhrStore(tmp_path / "store", scheme_id="tipre/v1")
        first.put("alice", "labs", "e1", b"x")
        with pytest.raises(StoreSchemeMismatchError, match="tipre/v1"):
            FilePhrStore(tmp_path / "store", scheme_id="green/ateniese-fo")

    def test_undeclared_opener_adopts_stored_scheme(self, tmp_path):
        first = FilePhrStore(tmp_path / "store", scheme_id="tipre/v1")
        first.put("alice", "labs", "e1", b"x")
        second = FilePhrStore(tmp_path / "store")
        assert second.scheme_id == "tipre/v1"
        assert second.get("alice", "e1").blob == b"x"

    def test_unsealed_store_sealed_by_declared_opener(self, tmp_path):
        """An unsealed (scheme=None) store is stamped in place on open."""
        import json

        FilePhrStore(tmp_path / "store").put("alice", "labs", "e1", b"x")
        sealer = FilePhrStore(tmp_path / "store", scheme_id="tipre/v1")
        assert sealer.scheme_id == "tipre/v1"
        header = json.loads((tmp_path / "store" / "index.json").read_text())
        assert header["scheme"] == "tipre/v1"
        # From now on the wrong scheme is rejected.
        with pytest.raises(StoreSchemeMismatchError):
            FilePhrStore(tmp_path / "store", scheme_id="green/ateniese-fo")

    def test_v2_index_migrates_in_place(self, tmp_path):
        """A pre-sealing v2 index upgrades to v3, adopting the opener."""
        import json

        root = tmp_path / "store"
        blob_dir = root / "blobs" / "alice"
        blob_dir.mkdir(parents=True)
        (blob_dir / "e1.bin").write_bytes(b"four")
        (root / "index.json").write_text(
            json.dumps(
                {"version": 2, "entries": {"alice|e1": {"category": "labs", "size": 4}}}
            )
        )

        store = FilePhrStore(root, scheme_id="tipre/v1")
        assert store.get("alice", "e1").blob == b"four"
        upgraded = json.loads((root / "index.json").read_text())
        assert upgraded["version"] == FilePhrStore.INDEX_VERSION
        assert upgraded["scheme"] == "tipre/v1"
        assert upgraded["entries"]["alice|e1"] == {"category": "labs", "size": 4}
