"""Tests for the pairing-based baselines: AFGH, Green--Ateniese, BB1, Matsuo."""

import pytest

from repro.baselines.afgh import AfghScheme
from repro.baselines.bb1 import Bb1Ibe
from repro.baselines.green_ateniese import GreenAtenieseIbp1
from repro.baselines.matsuo import MatsuoStylePre
from repro.ibe.kgc import KgcRegistry


class TestAfgh:
    @pytest.fixture()
    def setting(self, group, rng):
        scheme = AfghScheme(group)
        return scheme, scheme.keygen(rng), scheme.keygen(rng)

    def test_second_level_round_trip(self, setting, group, rng):
        scheme, alice, _ = setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt_second("alice", alice.public, message, rng)
        assert scheme.decrypt_second(ciphertext, alice.secret) == message

    def test_first_level_round_trip(self, setting, group, rng):
        scheme, alice, _ = setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt_first("alice", alice.public, message, rng)
        assert scheme.decrypt_first(ciphertext, alice.secret) == message

    def test_reencryption_round_trip(self, setting, group, rng):
        scheme, alice, bob = setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt_second("alice", alice.public, message, rng)
        rk = scheme.rekey(alice.secret, bob.public)
        transformed = scheme.reencrypt(ciphertext, rk, "bob")
        assert scheme.decrypt_first(transformed, bob.secret) == message

    def test_reencrypted_not_decryptable_by_delegator_path(self, setting, group, rng):
        scheme, alice, bob = setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt_second("alice", alice.public, message, rng)
        rk = scheme.rekey(alice.secret, bob.public)
        transformed = scheme.reencrypt(ciphertext, rk, "bob")
        assert scheme.decrypt_first(transformed, alice.secret) != message

    def test_rekey_non_interactive(self, setting, group):
        """rekey needs only the delegator secret and delegatee *public* key."""
        scheme, alice, bob = setting
        rk = scheme.rekey(alice.secret, bob.public)
        assert group.params.is_in_subgroup(rk)

    def test_collusion_view_is_weak(self, setting, group, rng):
        """Colluders hold g^(b/a) and b; neither equals the delegator secret."""
        scheme, alice, bob = setting
        rk = scheme.rekey(alice.secret, bob.public)
        view_rk, view_b = scheme.collusion_view(rk, bob.secret)
        assert view_b != alice.secret
        # The weak secret g^(1/a) is derivable; a itself is not a component.
        from repro.math.ntheory import modinv

        weak = group.g1_mul(view_rk, modinv(view_b, group.order))
        assert weak == group.g1_mul(group.generator, modinv(alice.secret, group.order))


class TestGreenAteniese:
    @pytest.fixture()
    def setting(self, group, rng):
        registry = KgcRegistry(group, rng)
        kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
        scheme = GreenAtenieseIbp1(group)
        return scheme, kgc1, kgc2, kgc1.extract("alice"), kgc2.extract("bob")

    def test_ibe_round_trip(self, setting, group, rng):
        scheme, kgc1, _, alice, _ = setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, message, "alice", rng)
        assert scheme.decrypt(ciphertext, alice) == message

    def test_delegation_round_trip(self, setting, group, rng):
        scheme, kgc1, kgc2, alice, bob = setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(kgc1.params, message, "alice", rng)
        rk = scheme.rkgen(alice, "bob", kgc2.params, rng)
        transformed = scheme.reencrypt(ciphertext, rk)
        assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_one_key_reencrypts_everything(self, setting, group, rng):
        """The contrast with the paper: no type granularity at all."""
        scheme, kgc1, kgc2, alice, bob = setting
        rk = scheme.rkgen(alice, "bob", kgc2.params, rng)
        for _ in range(3):
            message = group.random_gt(rng)
            ciphertext = scheme.encrypt(kgc1.params, message, "alice", rng)
            assert scheme.decrypt_reencrypted(scheme.reencrypt(ciphertext, rk), bob) == message

    def test_wrong_delegator_rejected(self, setting, group, rng):
        scheme, kgc1, kgc2, alice, _ = setting
        rk = scheme.rkgen(alice, "bob", kgc2.params, rng)
        other = scheme.encrypt(kgc1.params, group.random_gt(rng), "carol", rng)
        with pytest.raises(ValueError):
            scheme.reencrypt(other, rk)

    def test_wrong_delegatee_rejected(self, setting, group, rng):
        scheme, kgc1, kgc2, alice, bob = setting
        carol = kgc2.extract("carol")
        ciphertext = scheme.encrypt(kgc1.params, group.random_gt(rng), "alice", rng)
        rk = scheme.rkgen(alice, "bob", kgc2.params, rng)
        transformed = scheme.reencrypt(ciphertext, rk)
        with pytest.raises(ValueError):
            scheme.decrypt_reencrypted(transformed, carol)


class TestBb1:
    @pytest.fixture()
    def setting(self, group, rng):
        ibe = Bb1Ibe(group)
        params, master = ibe.setup(rng)
        return ibe, params, master

    def test_round_trip(self, setting, group, rng):
        ibe, params, master = setting
        key = ibe.extract(params, master, "alice", rng)
        message = group.random_gt(rng)
        assert ibe.decrypt(ibe.encrypt(params, message, "alice", rng), key) == message

    def test_key_randomisation(self, setting, group, rng):
        """BB1 keys are randomised but both decrypt."""
        ibe, params, master = setting
        k1 = ibe.extract(params, master, "alice", rng)
        k2 = ibe.extract(params, master, "alice", rng)
        assert k1.d0 != k2.d0
        message = group.random_gt(rng)
        ciphertext = ibe.encrypt(params, message, "alice", rng)
        assert ibe.decrypt(ciphertext, k1) == message
        assert ibe.decrypt(ciphertext, k2) == message

    def test_wrong_identity_rejected(self, setting, group, rng):
        ibe, params, master = setting
        bob_key = ibe.extract(params, master, "bob", rng)
        ciphertext = ibe.encrypt(params, group.random_gt(rng), "alice", rng)
        with pytest.raises(ValueError):
            ibe.decrypt(ciphertext, bob_key)

    def test_identity_scalar_stable(self, setting):
        ibe = setting[0]
        assert ibe.identity_scalar("alice") == ibe.identity_scalar("alice")
        assert ibe.identity_scalar("alice") != ibe.identity_scalar("bob")

    def test_v_is_pairing_of_g1_g2(self, setting, group):
        _, params, _ = setting
        assert params.v == group.pair(params.g1, params.g2)


class TestMatsuo:
    @pytest.fixture()
    def setting(self, group, rng):
        ibe = Bb1Ibe(group)
        scheme = MatsuoStylePre(group, ibe)
        params, master = ibe.setup(rng)
        alice = ibe.extract(params, master, "alice", rng)
        bob = ibe.extract(params, master, "bob", rng)
        return scheme, params, alice, bob

    def test_delegation_round_trip(self, setting, group, rng):
        scheme, params, alice, bob = setting
        message = group.random_gt(rng)
        ciphertext = scheme.encrypt(params, message, "alice", rng)
        rk = scheme.rkgen(params, alice, "bob", rng)
        transformed = scheme.reencrypt(ciphertext, rk)
        assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_same_kgc_constraint_is_natural(self, setting, group, rng):
        """Both parties share params — the same-KGC setting of Matsuo."""
        scheme, params, alice, bob = setting
        assert alice.domain == bob.domain

    def test_wrong_delegator_rejected(self, setting, group, rng):
        scheme, params, alice, _ = setting
        rk = scheme.rkgen(params, alice, "bob", rng)
        other = scheme.encrypt(params, group.random_gt(rng), "carol", rng)
        with pytest.raises(ValueError):
            scheme.reencrypt(other, rk)

    def test_wrong_delegatee_rejected(self, setting, group, rng):
        scheme, params, alice, bob = setting
        ciphertext = scheme.encrypt(params, group.random_gt(rng), "alice", rng)
        rk = scheme.rkgen(params, alice, "bob", rng)
        transformed = scheme.reencrypt(ciphertext, rk)
        import dataclasses

        forged = dataclasses.replace(transformed, delegatee="carol")
        with pytest.raises(ValueError):
            scheme.decrypt_reencrypted(forged, bob)

    def test_no_type_granularity(self, setting, group, rng):
        """Like GA: one key transforms all of the delegator's ciphertexts."""
        scheme, params, alice, bob = setting
        rk = scheme.rkgen(params, alice, "bob", rng)
        for _ in range(3):
            message = group.random_gt(rng)
            ciphertext = scheme.encrypt(params, message, "alice", rng)
            assert scheme.decrypt_reencrypted(scheme.reencrypt(ciphertext, rk), bob) == message
