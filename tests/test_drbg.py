"""Tests for the HMAC-DRBG and the RandomSource interface."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math.drbg import HmacDrbg, SystemRandomSource, system_random


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = HmacDrbg("seed"), HmacDrbg("seed")
        assert a.randbytes(64) == b.randbytes(64)
        assert a.randbelow(10**9) == b.randbelow(10**9)

    def test_different_seeds_differ(self):
        assert HmacDrbg("one").randbytes(32) != HmacDrbg("two").randbytes(32)

    def test_seed_types(self):
        # str seeds are their UTF-8 bytes; int seeds use big-endian encoding.
        assert HmacDrbg("7").randbytes(16) == HmacDrbg(b"7").randbytes(16)
        assert HmacDrbg(7).randbytes(16) == HmacDrbg(b"\x07").randbytes(16)
        assert HmacDrbg(7).randbytes(16) != HmacDrbg("7").randbytes(16)

    def test_reseed_changes_stream(self):
        a, b = HmacDrbg("seed"), HmacDrbg("seed")
        b.reseed("extra")
        assert a.randbytes(32) != b.randbytes(32)

    def test_fork_independence(self):
        parent = HmacDrbg("seed")
        child1 = parent.fork("a")
        child2 = parent.fork("a")
        # Forks consume parent state, so successive forks differ...
        assert child1.randbytes(16) != child2.randbytes(16)
        # ...but the construction is reproducible from the same start.
        again = HmacDrbg("seed").fork("a")
        assert again.randbytes(16) == HmacDrbg("seed").fork("a").randbytes(16)


class TestInterface:
    def test_randbytes_length(self):
        rng = HmacDrbg("x")
        for n in (0, 1, 31, 32, 33, 100):
            assert len(rng.randbytes(n)) == n

    def test_randbytes_negative_raises(self):
        with pytest.raises(ValueError):
            HmacDrbg("x").randbytes(-1)

    def test_getrandbits_range(self):
        rng = HmacDrbg("x")
        for bits in (1, 7, 8, 9, 63, 257):
            for _ in range(20):
                assert 0 <= rng.getrandbits(bits) < (1 << bits)

    def test_getrandbits_invalid(self):
        with pytest.raises(ValueError):
            HmacDrbg("x").getrandbits(0)

    def test_randbelow_range_and_coverage(self):
        rng = HmacDrbg("x")
        seen = {rng.randbelow(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_randbelow_invalid(self):
        with pytest.raises(ValueError):
            HmacDrbg("x").randbelow(0)

    def test_randint_inclusive(self):
        rng = HmacDrbg("x")
        values = {rng.randint(5, 7) for _ in range(100)}
        assert values == {5, 6, 7}

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            HmacDrbg("x").randint(5, 4)

    def test_rand_nonzero_below(self):
        rng = HmacDrbg("x")
        assert all(1 <= rng.rand_nonzero_below(5) < 5 for _ in range(100))
        with pytest.raises(ValueError):
            rng.rand_nonzero_below(1)

    def test_choice(self):
        rng = HmacDrbg("x")
        assert rng.choice([42]) == 42
        assert {rng.choice("abc") for _ in range(60)} == {"a", "b", "c"}
        with pytest.raises(IndexError):
            rng.choice([])

    def test_shuffle_is_permutation(self):
        rng = HmacDrbg("x")
        data = list(range(20))
        shuffled = list(data)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == data

    def test_sample(self):
        rng = HmacDrbg("x")
        population = list(range(10))
        picked = rng.sample(population, 4)
        assert len(picked) == 4
        assert len(set(picked)) == 4
        assert all(p in population for p in picked)
        with pytest.raises(ValueError):
            rng.sample([1, 2], 3)

    @given(st.integers(min_value=2, max_value=2**64))
    def test_randbelow_bound_property(self, bound):
        assert 0 <= HmacDrbg(bound).randbelow(bound) < bound


class TestSystemSource:
    def test_singleton(self):
        assert system_random() is system_random()

    def test_produces_bytes(self):
        assert len(SystemRandomSource().randbytes(16)) == 16

    def test_not_obviously_constant(self):
        source = SystemRandomSource()
        assert source.randbytes(16) != source.randbytes(16)


class TestDistribution:
    def test_byte_histogram_roughly_uniform(self):
        # 16k bytes: every value should occur, none wildly over-represented.
        data = HmacDrbg("hist").randbytes(16384)
        counts = [0] * 256
        for byte in data:
            counts[byte] += 1
        assert min(counts) > 0
        assert max(counts) < 64 * 4  # mean is 64; allow generous slack

    def test_randbelow_mean(self):
        rng = HmacDrbg("mean")
        n = 2000
        mean = sum(rng.randbelow(1000) for _ in range(n)) / n
        assert 450 < mean < 550
