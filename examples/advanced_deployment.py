"""Advanced deployment: threshold KGC + epoch-scoped (expiring) grants.

Two hardening features a real PHR operator would demand, both riding on
the paper's scheme unchanged:

* the patients' KGC runs as a 3-of-5 **threshold KGC**, so no single
  server can reconstruct the master key and silently read everything
  (the escrow mitigation the paper's threat model points to);
* travel grants are **epoch-scoped**: the epoch is folded into the type
  label, so last week's proxy key is cryptographically dead on this
  week's data even if the proxy "forgets" to delete it.

Run:  python examples/advanced_deployment.py
"""

from repro import HmacDrbg, KgcRegistry, PairingGroup, TypeAndIdentityPre
from repro.core.epochs import EpochSchedule, ExpiredDelegationError, TemporalPre
from repro.ibe.threshold import ThresholdKgc

DAY = 86400
rng = HmacDrbg("advanced-deployment")
group = PairingGroup("SS256")

# --- a threshold KGC for the patients' domain --------------------------------
kgc = ThresholdKgc(group, "patients-kgc", threshold=3, server_count=5, rng=rng)
print("patients' KGC: %d servers, any %d can extract, none holds the master key"
      % (len(kgc.servers), kgc.threshold))

# Alice's key is combined from three partial extractions...
alice = kgc.extract("alice", server_indices=[1, 3, 5])
# ...and is byte-identical no matter which quorum answered.
assert alice == kgc.extract("alice", server_indices=[2, 4, 5])
print("alice's key is quorum-independent: OK")

# A rogue pair of servers learns nothing useful:
from repro.math.shamir import reconstruct_secret

rogue_shares = [server.reveal_share_for_test() for server in kgc.servers[:2]]
guess = reconstruct_secret(rogue_shares, group.order)
assert group.g1_mul(group.generator, guess) != kgc.params.public_key
print("2-of-5 collusion fails to recover the master key: OK")

# --- the delegatee side stays an ordinary single KGC --------------------------
registry = KgcRegistry(group, rng)
hospital = registry.create("hospital-kgc")
doctor = hospital.extract("dr-jansen")

# --- daily-expiring grants -----------------------------------------------------
temporal = TemporalPre(TypeAndIdentityPre(group), EpochSchedule(epoch_seconds=DAY))

monday, tuesday = 100 * DAY, 101 * DAY
vitals_monday = group.random_gt(rng)
ct_monday = temporal.encrypt(kgc.params, alice, vitals_monday, "vitals", monday, rng)

grant_monday = temporal.grant(alice, "dr-jansen", "vitals", monday, hospital.params, rng)
served = temporal.reencrypt(ct_monday, grant_monday)
assert temporal.decrypt_reencrypted(served, doctor) == vitals_monday
print("Monday's grant serves Monday's data: OK")

# Tuesday: new data, old key — refused up front...
vitals_tuesday = group.random_gt(rng)
ct_tuesday = temporal.encrypt(kgc.params, alice, vitals_tuesday, "vitals", tuesday, rng)
try:
    temporal.reencrypt(ct_tuesday, grant_monday)
except ExpiredDelegationError as refusal:
    print("expired grant refused:", refusal)

# ...and even a proxy that skips the check produces garbage, because the
# epoch lives inside the type exponent.
mixed = temporal.scheme.preenc(ct_tuesday, grant_monday, unchecked=True)
assert temporal.scheme.decrypt_reencrypted(mixed, doctor) != vitals_tuesday
print("expired grant is cryptographically dead (not just policy-dead): OK")

# Alice re-grants for Tuesday in one local call — no KGC, no doctor involved.
grant_tuesday = temporal.grant(alice, "dr-jansen", "vitals", tuesday, hospital.params, rng)
assert temporal.decrypt_reencrypted(
    temporal.reencrypt(ct_tuesday, grant_tuesday), doctor
) == vitals_tuesday
print("fresh Tuesday grant restores access: OK")
