"""Jacobian-coordinate point arithmetic over prime fields, on raw integers.

A Jacobian triple ``(X, Y, Z)`` represents the affine point
``(X / Z^2, Y / Z^3)``; the identity is any triple with ``Z == 0``.  The
payoff over the affine formulas in :mod:`repro.ec.curve` is that *no*
field inversion is needed per group operation — a doubling costs ~11
multiplications and an addition ~16, versus one extended-Euclid inversion
(tens of multiplications' worth) per affine step.  The single inversion
is deferred to the end and, when many points need normalising at once,
shared across all of them via Montgomery's batch-inversion trick
(:func:`repro.math.ntheory.batch_modinv`).

Everything here operates on raw integers (or bigint-backend values), not
:class:`~repro.math.fields.FpElement` objects: the object layer's
``__init__``/coercion overhead is what makes pure-python affine
arithmetic slow, so the hot kernels bypass it entirely.  The affine code
remains the conformance reference; ``tests/test_substrate_paths.py``
asserts bit-identical normalised results on every pinned parameter set.
"""

from __future__ import annotations

from repro.math.ntheory import batch_modinv, modinv

__all__ = [
    "JAC_INFINITY",
    "jac_double",
    "jac_add",
    "jac_add_mixed",
    "jac_neg",
    "jac_is_infinity",
    "to_jacobian",
    "jac_normalize",
    "batch_normalize",
    "jac_scalar_mul",
]

# Canonical identity triple (any Z == 0 triple is treated as infinity).
JAC_INFINITY = (1, 1, 0)


def jac_is_infinity(point) -> bool:
    return point[2] == 0


def to_jacobian(x: int, y: int):
    """Lift affine integer coordinates to a Jacobian triple."""
    return (x, y, 1)


def jac_neg(point, p: int):
    x, y, z = point
    return (x, (-y) % p, z)


def jac_double(point, a: int, p: int):
    """Double a Jacobian point on ``y^2 = x^3 + a*x + b`` (``b`` unused)."""
    x1, y1, z1 = point
    if z1 == 0 or y1 == 0:
        return JAC_INFINITY
    yy = y1 * y1 % p
    yyyy = yy * yy % p
    zz = z1 * z1 % p
    s = 4 * x1 * yy % p
    m = (3 * x1 * x1 + a * zz % p * zz) % p
    x3 = (m * m - 2 * s) % p
    y3 = (m * (s - x3) - 8 * yyyy) % p
    z3 = 2 * y1 * z1 % p
    return (x3, y3, z3)


def jac_add(left, right, a: int, p: int):
    """General Jacobian + Jacobian addition."""
    x1, y1, z1 = left
    x2, y2, z2 = right
    if z1 == 0:
        return right
    if z2 == 0:
        return left
    z1z1 = z1 * z1 % p
    z2z2 = z2 * z2 % p
    u1 = x1 * z2z2 % p
    u2 = x2 * z1z1 % p
    s1 = y1 * z2 % p * z2z2 % p
    s2 = y2 * z1 % p * z1z1 % p
    if u1 == u2:
        if (s1 + s2) % p == 0:
            return JAC_INFINITY
        return jac_double(left, a, p)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    hh = h * h % p
    hhh = h * hh % p
    v = u1 * hh % p
    x3 = (r * r - hhh - 2 * v) % p
    y3 = (r * (v - x3) - s1 * hhh) % p
    z3 = z1 * z2 % p * h % p
    return (x3, y3, z3)


def jac_add_mixed(left, x2: int, y2: int, a: int, p: int):
    """Jacobian + affine addition (``Z2 == 1``); ~5 multiplications cheaper."""
    x1, y1, z1 = left
    if z1 == 0:
        return (x2, y2, 1)
    z1z1 = z1 * z1 % p
    u2 = x2 * z1z1 % p
    s2 = y2 * z1 % p * z1z1 % p
    if x1 == u2:
        if (y1 + s2) % p == 0:
            return JAC_INFINITY
        return jac_double(left, a, p)
    h = (u2 - x1) % p
    r = (s2 - y1) % p
    hh = h * h % p
    hhh = h * hh % p
    v = x1 * hh % p
    x3 = (r * r - hhh - 2 * v) % p
    y3 = (r * (v - x3) - y1 * hhh) % p
    z3 = z1 * h % p
    return (x3, y3, z3)


def jac_normalize(point, p: int):
    """Affine integer coordinates ``(x, y)`` of one triple, or ``None``."""
    x, y, z = point
    if z == 0:
        return None
    z_inv = modinv(z, p)
    zi2 = z_inv * z_inv % p
    return (x * zi2 % p, y * zi2 % p * z_inv % p)


def batch_normalize(points, p: int):
    """Normalise many Jacobian triples with a single field inversion.

    Returns a list of affine ``(x, y)`` pairs (``None`` for identities),
    in input order.
    """
    live = [(i, pt) for i, pt in enumerate(points) if pt[2] != 0]
    out = [None] * len(points)
    if not live:
        return out
    inverses = batch_modinv([pt[2] for _, pt in live], p)
    for (i, (x, y, _)), z_inv in zip(live, inverses):
        zi2 = z_inv * z_inv % p
        out[i] = (x * zi2 % p, y * zi2 % p * z_inv % p)
    return out


def jac_scalar_mul(x: int, y: int, scalar: int, a: int, p: int):
    """``scalar * (x, y)`` by left-to-right double-and-add, one inversion.

    The addend stays affine, so every addition is a mixed add.  Returns
    affine ``(x, y)`` or ``None`` for the identity.  ``scalar`` must be
    non-negative (callers handle negation — it is free on the curve).
    """
    if scalar == 0:
        return None
    acc = JAC_INFINITY
    for bit in bin(scalar)[2:]:
        acc = jac_double(acc, a, p)
        if bit == "1":
            acc = jac_add_mixed(acc, x, y, a, p)
    return jac_normalize(acc, p)
