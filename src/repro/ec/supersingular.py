"""Type-A (supersingular) pairing groups: E: y^2 = x^3 + x over F_p.

For a prime ``p = 3 (mod 4)`` the curve ``y^2 = x^3 + x`` is supersingular
with ``#E(F_p) = p + 1`` and embedding degree 2.  Taking a prime ``q``
dividing ``p + 1`` gives a subgroup G1 of order ``q`` on which the
distortion map

    phi(x, y) = (-x, i*y),   i^2 = -1 in F_{p^2}

yields a symmetric pairing ``e(P, Q) = tate(P, phi(Q))`` with values in the
order-``q`` subgroup GT of F_{p^2}^*.  This is exactly the structure of the
PBC / charm-crypto "type A" groups (e.g. SS512) that pairing papers of the
Boneh--Franklin era ran on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.ec.curve import EllipticCurve, Point
from repro.ec.jacobian import jac_scalar_mul
from repro.math.fields import Fp2Element, PrimeField, QuadraticExtField
from repro.math.ntheory import bytes_to_int

__all__ = ["SupersingularCurve"]

_HASH_TO_POINT_TRIES = 256


@dataclass(frozen=True)
class SupersingularCurve:
    """A complete type-A pairing group description.

    Attributes:
        name: human-readable parameter-set name (e.g. ``"SS512"``).
        p: base-field characteristic, ``p = 3 (mod 4)``.
        q: prime order of G1 and GT, with ``q | p + 1``.
        h: cofactor, ``p + 1 = h * q``.
        generator: a fixed generator of G1.
    """

    name: str
    p: int
    q: int
    h: int
    generator_x: int
    generator_y: int
    base_field: PrimeField = field(init=False, repr=False, compare=False)
    ext_field: QuadraticExtField = field(init=False, repr=False, compare=False)
    curve: EllipticCurve = field(init=False, repr=False, compare=False)
    ext_curve: EllipticCurve = field(init=False, repr=False, compare=False)
    generator: Point = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.p % 4 != 3:
            raise ValueError("supersingular y^2 = x^3 + x needs p = 3 (mod 4)")
        if (self.p + 1) != self.h * self.q:
            raise ValueError("cofactor mismatch: p + 1 != h * q")
        base = PrimeField(self.p)
        ext = QuadraticExtField(base)
        object.__setattr__(self, "base_field", base)
        object.__setattr__(self, "ext_field", ext)
        object.__setattr__(self, "curve", EllipticCurve(base, base(1), base(0)))
        object.__setattr__(self, "ext_curve", EllipticCurve(ext, ext(1), ext(0)))
        gen = self.curve.point(self.generator_x, self.generator_y)
        object.__setattr__(self, "generator", gen)

    # ------------------------------------------------------------------ G1

    def random_point(self, rng) -> Point:
        """Uniform element of G1 (a random multiple of the generator)."""
        return self.generator * rng.rand_nonzero_below(self.q)

    def random_scalar(self, rng) -> int:
        """Uniform element of Z_q^*."""
        return rng.rand_nonzero_below(self.q)

    def is_in_subgroup(self, point: Point) -> bool:
        """Check membership of the order-``q`` subgroup G1."""
        return self.curve.contains(point) and (point * self.q).is_infinity()

    def hash_to_group(self, data: bytes | str) -> Point:
        """Hash arbitrary data onto G1 (try-and-increment + cofactor clear).

        This realises the random oracle H1: {0,1}* -> G1 of Boneh--Franklin.
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        p_bytes = (self.p.bit_length() + 7) // 8
        for counter in range(_HASH_TO_POINT_TRIES):
            digest = b""
            block = 0
            while len(digest) < p_bytes + 8:
                digest += hashlib.sha256(
                    b"repro-h2p" + counter.to_bytes(2, "big") + block.to_bytes(2, "big") + data
                ).digest()
                block += 1
            x = self.base_field(bytes_to_int(digest[: p_bytes + 8]))
            candidate = self.curve.lift_x(x, y_parity=digest[-1] & 1)
            if candidate is None:
                continue
            # Cofactor clear on raw coordinates via the Jacobian ladder,
            # skipping the Point/FpElement wrappers the generic __mul__
            # would rebuild per doubling.  jac_scalar_mul is the same
            # routine Point.__mul__ dispatches to on prime-field curves
            # (a = 1 for y^2 = x^3 + x), so the result is bit-identical;
            # tests pin golden vectors across parameter sets.
            cleared = jac_scalar_mul(
                int(candidate.x), int(candidate.y), self.h, 1, self.p
            )
            if cleared is None:  # candidate's order divides the cofactor
                continue
            return Point(
                self.curve,
                self.base_field(cleared[0]),
                self.base_field(cleared[1]),
            )
        raise RuntimeError("hash_to_group failed after %d tries" % _HASH_TO_POINT_TRIES)

    # ------------------------------------------------------------- distortion

    def distort(self, point: Point) -> Point:
        """Apply the distortion map phi(x, y) = (-x, i*y) into E(F_{p^2})."""
        if point.is_infinity():
            return self.ext_curve.infinity()
        ext = self.ext_field
        x = ext(-int(point.x) % self.p, 0)
        y = ext(0, int(point.y))
        return Point(self.ext_curve, x, y)

    def lift_to_ext(self, point: Point) -> Point:
        """Embed a base-field point into E(F_{p^2}) without distortion."""
        if point.is_infinity():
            return self.ext_curve.infinity()
        ext = self.ext_field
        return Point(self.ext_curve, ext(int(point.x), 0), ext(int(point.y), 0))

    # ------------------------------------------------------------------- GT

    def gt_exponent(self) -> int:
        """The final-exponentiation power ``(p^2 - 1) / q``."""
        return (self.p * self.p - 1) // self.q

    def gt_identity(self) -> Fp2Element:
        return self.ext_field.one()

    def is_in_gt(self, value: Fp2Element) -> bool:
        """Check membership of the order-``q`` subgroup of F_{p^2}^*."""
        return not value.is_zero() and (value**self.q).is_one()

    def random_gt(self, rng) -> Fp2Element:
        """Uniform element of GT (random power of a fixed GT generator)."""
        base = self.ext_field.random(rng)
        while True:
            candidate = base ** self.gt_exponent()
            if not candidate.is_one():
                return candidate ** rng.rand_nonzero_below(self.q)
            base = self.ext_field.random(rng)

    def security_bits(self) -> int:
        """Rough symmetric-security estimate: min(q/2, field-size heuristic)."""
        dlog_group = self.q.bit_length() // 2
        # Embedding degree 2 => GT lives in a field of size p^2; use the
        # standard subexponential heuristic table.
        modulus_bits = 2 * self.p.bit_length()
        if modulus_bits >= 3072:
            dlog_field = 128
        elif modulus_bits >= 2048:
            dlog_field = 112
        elif modulus_bits >= 1024:
            dlog_field = 80
        else:
            dlog_field = max(16, modulus_bits // 16)
        return min(dlog_group, dlog_field)
