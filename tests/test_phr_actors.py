"""Direct unit tests for the PHR actors (below the workflow layer)."""

import pytest

from repro.math.drbg import HmacDrbg
from repro.phr.actors import AccessDeniedError, CategoryProxy, Patient, Requester
from repro.phr.generator import PhrGenerator


@pytest.fixture()
def actors(pre_setting, group, rng):
    scheme, kgc1, kgc2, alice_key, bob_key = pre_setting
    patient = Patient(
        name="alice", params=kgc1.params, private_key=alice_key, group=group, rng=rng
    )
    requester = Requester(
        name="bob", role="doctor", params=kgc2.params, private_key=bob_key, group=group
    )
    proxy = CategoryProxy(category="lab-results", group=group, scheme=scheme)
    return patient, requester, proxy


class TestPatient:
    def test_encrypt_entry_produces_wire_bytes(self, actors):
        patient, _, _ = actors
        entry = PhrGenerator(HmacDrbg("a"), "alice").entry_for("lab-results")
        blob = patient.encrypt_entry(entry)
        assert isinstance(blob, bytes)
        assert entry.to_bytes() not in blob  # actually encrypted

    def test_self_decrypt(self, actors):
        patient, _, _ = actors
        entry = PhrGenerator(HmacDrbg("a"), "alice").entry_for("vitals")
        assert patient.decrypt_entry(patient.encrypt_entry(entry)) == entry

    def test_make_grant_records_policy(self, actors):
        patient, requester, _ = actors
        proxy_key = patient.make_grant(requester, "lab-results")
        assert proxy_key.delegatee == "bob"
        assert patient.policy.allows("bob", "KGC2", "lab-results")

    def test_record_revocation(self, actors):
        patient, requester, _ = actors
        patient.make_grant(requester, "labs")
        assert patient.record_revocation(requester, "labs")
        assert not patient.policy.allows("bob", "KGC2", "labs")


class TestCategoryProxy:
    def test_accept_record_validates_category(self, actors):
        patient, _, proxy = actors
        wrong = PhrGenerator(HmacDrbg("w"), "alice").entry_for("vitals")
        with pytest.raises(ValueError):
            proxy.accept_record("alice", wrong.entry_id, patient.encrypt_entry(wrong))

    def test_install_grant_validates_category(self, actors):
        patient, requester, proxy = actors
        wrong_key = patient.make_grant(requester, "vitals")
        with pytest.raises(ValueError):
            proxy.install_grant(wrong_key)
        assert proxy.grant_count() == 0

    def test_serve_round_trip(self, actors):
        patient, requester, proxy = actors
        entry = PhrGenerator(HmacDrbg("s"), "alice").entry_for("lab-results")
        proxy.accept_record("alice", entry.entry_id, patient.encrypt_entry(entry))
        proxy.install_grant(patient.make_grant(requester, "lab-results"))
        served = proxy.serve("alice", entry.entry_id, "KGC2", "bob")
        assert requester.read_entry(served) == entry

    def test_serve_without_grant_denied(self, actors):
        patient, _, proxy = actors
        entry = PhrGenerator(HmacDrbg("d"), "alice").entry_for("lab-results")
        proxy.accept_record("alice", entry.entry_id, patient.encrypt_entry(entry))
        with pytest.raises(AccessDeniedError):
            proxy.serve("alice", entry.entry_id, "KGC2", "bob")

    def test_revoke_grant(self, actors):
        patient, requester, proxy = actors
        proxy.install_grant(patient.make_grant(requester, "lab-results"))
        assert proxy.revoke_grant("KGC1", "alice", "KGC2", "bob")
        assert proxy.grant_count() == 0
        assert not proxy.revoke_grant("KGC1", "alice", "KGC2", "bob")

    def test_proxy_store_never_sees_plaintext(self, actors):
        patient, _, proxy = actors
        entry = PhrGenerator(HmacDrbg("p"), "alice").entry_for("lab-results")
        proxy.accept_record("alice", entry.entry_id, patient.encrypt_entry(entry))
        stored = proxy.store.get("alice", entry.entry_id)
        for sensitive in (b"value", entry.to_bytes()):
            assert sensitive not in stored.blob


class TestRequester:
    def test_read_entry_requires_matching_key(self, actors, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice_key, _ = pre_setting
        patient, requester, proxy = actors
        carol_key = kgc2.extract("carol")
        carol = Requester(
            name="carol", role="doctor", params=kgc2.params, private_key=carol_key, group=group
        )
        entry = PhrGenerator(HmacDrbg("r"), "alice").entry_for("lab-results")
        proxy.accept_record("alice", entry.entry_id, patient.encrypt_entry(entry))
        proxy.install_grant(patient.make_grant(requester, "lab-results"))
        served = proxy.serve("alice", entry.entry_id, "KGC2", "bob")
        with pytest.raises(Exception):
            carol.read_entry(served)
