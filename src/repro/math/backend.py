"""Pluggable bigint backend: pure-python by default, gmpy2 when available.

Every hot operation in the substrate bottoms out in three primitives —
modular inversion, modular exponentiation and plain big-integer
multiplication.  CPython's own integers handle the last one well, but
``gmpy2.mpz`` (GMP) is several times faster on the first two at pairing
sizes.  This module abstracts the choice behind an :class:`IntBackend`
so the rest of the stack is backend-agnostic:

* ``PythonIntBackend`` — plain ``int`` + extended Euclid; always present
  and the reference implementation.
* ``Gmpy2IntBackend`` — wraps field characteristics as ``gmpy2.mpz`` so
  ordinary ``%``/``*`` arithmetic propagates mpz through the whole field
  layer, and routes inversion/exponentiation through GMP.

The trick that keeps the integration surface tiny: only the *modulus*
(``PrimeField.p``) is wrapped.  ``int % mpz`` and ``int * mpz`` return
``mpz``, so every derived value inherits the fast type without any other
code changing.  ``hash(mpz(n)) == hash(n)`` keeps dict/set semantics, and
serialisation boundaries convert with ``int(...)`` explicitly.

Selection: the ``REPRO_INT_BACKEND`` environment variable (``python``,
``gmpy2`` or ``auto``; default ``auto`` = gmpy2 when importable).  Tests
and benchmarks can switch at runtime with :func:`set_int_backend`; the
cross-path property suite asserts both backends produce bit-identical
golden vectors.
"""

from __future__ import annotations

import os

__all__ = [
    "IntBackend",
    "PythonIntBackend",
    "Gmpy2IntBackend",
    "active_backend",
    "set_int_backend",
    "available_backends",
    "backend_name",
]

_ENV_VAR = "REPRO_INT_BACKEND"


class IntBackend:
    """The protocol every bigint backend implements."""

    name = "abstract"

    def wrap(self, value):
        """Convert ``value`` into the backend's native integer type."""
        raise NotImplementedError

    def modinv(self, a, m):
        """Inverse of ``a`` modulo ``m``; ZeroDivisionError when none exists."""
        raise NotImplementedError

    def powmod(self, base, exponent, modulus):
        """``base ** exponent % modulus`` for non-negative exponents."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class PythonIntBackend(IntBackend):
    """Plain CPython integers; the always-available reference backend."""

    name = "python"

    def wrap(self, value):
        return int(value)

    def modinv(self, a, m):
        a %= m
        if a == 0:
            raise ZeroDivisionError("0 has no inverse modulo %d" % m)
        old_r, r = a, m
        old_s, s = 1, 0
        while r != 0:
            q = old_r // r
            old_r, r = r, old_r - q * r
            old_s, s = s, old_s - q * s
        if old_r not in (1, -1):
            raise ZeroDivisionError("%d is not invertible modulo %d" % (a, m))
        if old_r == -1:
            old_s = -old_s
        return old_s % m

    def powmod(self, base, exponent, modulus):
        return pow(base, exponent, modulus)


class Gmpy2IntBackend(IntBackend):
    """GMP-accelerated integers via ``gmpy2``; optional."""

    name = "gmpy2"

    def __init__(self):
        import gmpy2  # raises ImportError when the wheel is absent

        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz

    def wrap(self, value):
        return self._mpz(value)

    def modinv(self, a, m):
        a %= m
        if a == 0:
            raise ZeroDivisionError("0 has no inverse modulo %d" % m)
        try:
            return self._gmpy2.invert(a, m)
        except ZeroDivisionError:
            raise ZeroDivisionError("%d is not invertible modulo %d" % (a, m)) from None

    def powmod(self, base, exponent, modulus):
        return self._gmpy2.powmod(base, exponent, modulus)


_PYTHON = PythonIntBackend()
_ACTIVE: IntBackend | None = None


def _gmpy2_importable() -> bool:
    try:
        import gmpy2  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> list[str]:
    """Names of the backends importable in this interpreter."""
    names = ["python"]
    if _gmpy2_importable():
        names.append("gmpy2")
    return names


def _resolve(name: str | None) -> IntBackend:
    choice = (name or os.environ.get(_ENV_VAR, "auto")).strip().lower()
    if choice in ("", "auto"):
        choice = "gmpy2" if _gmpy2_importable() else "python"
    if choice == "python":
        return _PYTHON
    if choice == "gmpy2":
        try:
            return Gmpy2IntBackend()
        except ImportError:
            raise RuntimeError(
                "REPRO_INT_BACKEND=gmpy2 requested but gmpy2 is not importable"
            ) from None
    raise ValueError("unknown int backend %r (expected python, gmpy2 or auto)" % choice)


def active_backend() -> IntBackend:
    """The process-wide backend (resolved lazily from the environment)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _resolve(None)
    return _ACTIVE


def set_int_backend(name: str | None) -> IntBackend:
    """Select a backend at runtime (``None`` re-resolves from the env var).

    Existing field/curve objects keep the integer type they were built
    with; callers that need a clean switch (the cross-path tests)
    construct fresh parameter objects afterwards.
    """
    global _ACTIVE
    _ACTIVE = _resolve(name) if name is not None else None
    return active_backend()


def backend_name() -> str:
    return active_backend().name
