"""Deliberately weakened designs for the E7 ablation study.

The paper's introduction (Section 1.1) contrasts its construction with two
alternatives a system designer might reach for.  Both are implemented here
so the ablation benchmark can *measure* the failure the paper predicts:

* :class:`LabelOnlyPre` — "trust the proxy": ciphertexts are plain
  (type-less) Green--Ateniese; the type is a metadata label and the proxy
  is supposed to check a policy table before transforming.  With
  ``corrupt_proxy=True`` the check is skipped, and every message of every
  type leaks to any delegatee with a key installed — the violation rate
  jumps from 0% to 100%.
* The per-type-keypair strawman lives in
  :class:`repro.baselines.multi_keypair.MultiKeypairDelegation` (secure but
  expensive; E3 measures the cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.green_ateniese import (
    GaProxyKey,
    GaReEncryptedCiphertext,
    GreenAtenieseIbp1,
)
from repro.ibe.keys import IbeCiphertext, IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = ["LabelOnlyPre", "LabelledCiphertext", "PolicyViolationError"]


class PolicyViolationError(PermissionError):
    """An honest proxy refused a transformation the policy forbids."""


@dataclass(frozen=True)
class LabelledCiphertext:
    """A type-less Green--Ateniese ciphertext with a cleartext type label."""

    type_label: str
    inner: IbeCiphertext


@dataclass
class LabelOnlyPre:
    """The "trust the proxy to enforce types" design (ablation baseline).

    The delegator installs *one* proxy key (valid for everything) plus a
    policy table saying which (delegatee, type) pairs are allowed.  The
    cryptography cannot enforce the table; only the proxy's goodwill does.
    """

    group: PairingGroup
    corrupt_proxy: bool = False
    _scheme: GreenAtenieseIbp1 = field(init=False)
    _keys: dict[tuple[str, str], GaProxyKey] = field(default_factory=dict)
    _policy: set[tuple[str, str, str]] = field(default_factory=set)

    def __post_init__(self):
        self._scheme = GreenAtenieseIbp1(self.group)

    # ----------------------------------------------------------- delegator

    def encrypt(
        self,
        params: IbeParams,
        message: Fp2Element,
        identity: str,
        type_label: str,
        rng: RandomSource | None = None,
    ) -> LabelledCiphertext:
        inner = self._scheme.encrypt(params, message, identity, rng or system_random())
        return LabelledCiphertext(type_label=type_label, inner=inner)

    def decrypt(self, ciphertext: LabelledCiphertext, key: IbePrivateKey) -> Fp2Element:
        return self._scheme.decrypt(ciphertext.inner, key)

    def install_delegation(
        self,
        delegator_key: IbePrivateKey,
        delegatee: str,
        delegatee_params: IbeParams,
        allowed_types: list[str],
        rng: RandomSource | None = None,
    ) -> None:
        """One all-powerful key + a policy row per allowed type."""
        proxy_key = self._scheme.rkgen(
            delegator_key, delegatee, delegatee_params, rng or system_random()
        )
        self._keys[(delegator_key.identity, delegatee)] = proxy_key
        for type_label in allowed_types:
            self._policy.add((delegator_key.identity, delegatee, type_label))

    # --------------------------------------------------------------- proxy

    def reencrypt(
        self, ciphertext: LabelledCiphertext, delegator: str, delegatee: str
    ) -> GaReEncryptedCiphertext:
        """Honest proxies check the policy; corrupt ones transform anyway."""
        key = self._keys.get((delegator, delegatee))
        if key is None:
            raise KeyError("no delegation installed for (%s, %s)" % (delegator, delegatee))
        allowed = (delegator, delegatee, ciphertext.type_label) in self._policy
        if not allowed and not self.corrupt_proxy:
            raise PolicyViolationError(
                "policy forbids type %r for delegatee %r" % (ciphertext.type_label, delegatee)
            )
        return self._scheme.reencrypt(ciphertext.inner, key)

    # ------------------------------------------------------------ delegatee

    def decrypt_reencrypted(
        self, ciphertext: GaReEncryptedCiphertext, delegatee_key: IbePrivateKey
    ) -> Fp2Element:
        return self._scheme.decrypt_reencrypted(ciphertext, delegatee_key)
