"""Tests for the executable proof structure (the Game2 hop of Theorem 1)."""

import pytest

from repro.security.proof_games import (
    IdealChallenger,
    RealChallenger,
    distinguishing_advantage,
)

TRIALS = 40


def omniscient_distinguisher(ciphertext, m0, m1, challenger, rng):
    """Decrypts with the delegator's key — out-of-model, maximal power."""
    recovered = challenger.scheme.decrypt(
        ciphertext, challenger.delegator_key_for_analysis()
    )
    if recovered == m0:
        return 0
    if recovered == m1:
        return 1
    return rng.randbelow(2)


def honest_distinguisher(ciphertext, m0, m1, challenger, rng):
    """An in-model adversary: inspects the ciphertext, flips a coin."""
    assert ciphertext.type_label == "t-star"
    return rng.randbelow(2)


class TestRealVsIdeal:
    def test_omniscient_wins_real_game(self, group):
        """Against the real mask, key access decrypts and always wins."""
        advantage = distinguishing_advantage(
            RealChallenger, omniscient_distinguisher, group, TRIALS, "real-omni"
        )
        assert advantage == pytest.approx(0.5)

    def test_omniscient_blind_in_game2(self, group):
        """The Game2 pad destroys even the omniscient distinguisher.

        Decryption of ``m_b * T`` with the real key yields a uniformly
        random value (T is fresh), so the strategy degenerates to a coin
        flip — the information-theoretic core of the proof.
        """
        advantage = distinguishing_advantage(
            IdealChallenger, omniscient_distinguisher, group, TRIALS, "ideal-omni"
        )
        assert advantage <= 0.25  # binomial noise at n=40, true value 0

    def test_honest_adversary_identical_in_both_games(self, group):
        """In-model views are indistinguishable across the hop (Theorem 1)."""
        real = distinguishing_advantage(
            RealChallenger, honest_distinguisher, group, TRIALS, "hop"
        )
        ideal = distinguishing_advantage(
            IdealChallenger, honest_distinguisher, group, TRIALS, "hop"
        )
        assert real <= 0.25 and ideal <= 0.25

    def test_game2_decryption_is_uniform_garbage(self, group, rng):
        """Decrypting Game2 challenges never returns either candidate."""
        challenger = IdealChallenger(group, rng)
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        for _ in range(5):
            challenge = challenger.challenge(m0, m1)
            recovered = challenger.scheme.decrypt(
                challenge.ciphertext, challenger.delegator_key_for_analysis()
            )
            assert recovered not in (m0, m1)  # except w.p. ~2/q

    def test_challenge_shapes_identical(self, group, rng):
        """Game0 and Game2 challenges are structurally indistinguishable."""
        real = RealChallenger(group, rng).challenge(
            group.random_gt(rng), group.random_gt(rng)
        )
        ideal = IdealChallenger(group, rng).challenge(
            group.random_gt(rng), group.random_gt(rng)
        )
        for challenge in (real, ideal):
            ct = challenge.ciphertext
            assert ct.identity == "alice"
            assert ct.type_label == "t-star"
            assert group.params.is_in_subgroup(ct.c1)

    def test_trials_validated(self, group):
        with pytest.raises(ValueError):
            distinguishing_advantage(
                RealChallenger, honest_distinguisher, group, 0, "x"
            )
