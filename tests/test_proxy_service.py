"""Tests for the ProxyService actor (key table, enforcement, logging)."""

import pytest

from repro.core.proxy import NoProxyKeyError, ProxyService


@pytest.fixture()
def delegation(pre_setting, group, rng):
    scheme, kgc1, kgc2, alice, bob = pre_setting
    proxy = ProxyService(scheme)
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(kgc1.params, alice, message, "t1", rng)
    proxy_key = scheme.pextract(alice, "bob", "t1", kgc2.params, rng)
    return scheme, proxy, message, ciphertext, proxy_key, bob


class TestKeyManagement:
    def test_install_and_count(self, delegation):
        _, proxy, _, _, proxy_key, _ = delegation
        assert proxy.key_count() == 0
        proxy.install_key(proxy_key)
        assert proxy.key_count() == 1
        proxy.install_key(proxy_key)  # replace, not duplicate
        assert proxy.key_count() == 1

    def test_revoke(self, delegation):
        _, proxy, _, _, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        assert proxy.revoke_key("KGC1", "alice", "KGC2", "bob", "t1")
        assert proxy.key_count() == 0
        assert not proxy.revoke_key("KGC1", "alice", "KGC2", "bob", "t1")

    def test_delegations_for(self, pre_setting, rng):
        scheme, _, kgc2, alice, _ = pre_setting
        proxy = ProxyService(scheme)
        proxy.install_key(scheme.pextract(alice, "bob", "t1", kgc2.params, rng))
        proxy.install_key(scheme.pextract(alice, "bob", "t2", kgc2.params, rng))
        proxy.install_key(scheme.pextract(alice, "carol", "t1", kgc2.params, rng))
        assert proxy.delegations_for("alice") == [
            ("bob", "t1"),
            ("bob", "t2"),
            ("carol", "t1"),
        ]
        assert proxy.delegations_for("nobody") == []


class TestReEncryption:
    def test_served_request(self, delegation):
        scheme, proxy, message, ciphertext, proxy_key, bob = delegation
        proxy.install_key(proxy_key)
        assert proxy.can_reencrypt(ciphertext, "KGC2", "bob")
        transformed = proxy.reencrypt(ciphertext, "KGC2", "bob")
        assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_no_key_refused(self, delegation):
        _, proxy, _, ciphertext, _, _ = delegation
        assert not proxy.can_reencrypt(ciphertext, "KGC2", "bob")
        with pytest.raises(NoProxyKeyError):
            proxy.reencrypt(ciphertext, "KGC2", "bob")

    def test_wrong_type_refused(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, _ = pre_setting
        proxy = ProxyService(scheme)
        proxy.install_key(scheme.pextract(alice, "bob", "t1", kgc2.params, rng))
        other = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "t2", rng)
        with pytest.raises(NoProxyKeyError):
            proxy.reencrypt(other, "KGC2", "bob")

    def test_wrong_delegatee_refused(self, delegation):
        _, proxy, _, ciphertext, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        with pytest.raises(NoProxyKeyError):
            proxy.reencrypt(ciphertext, "KGC2", "carol")

    def test_get_key(self, delegation):
        _, proxy, _, ciphertext, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        assert proxy.get_key(ciphertext, "KGC2", "bob") is proxy_key
        with pytest.raises(NoProxyKeyError):
            proxy.get_key(ciphertext, "KGC2", "nobody")


class TestLog:
    def test_log_records_transformations(self, delegation):
        _, proxy, _, ciphertext, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        proxy.reencrypt(ciphertext, "KGC2", "bob")
        proxy.reencrypt(ciphertext, "KGC2", "bob")
        log = proxy.log
        assert len(log) == 2
        assert log[0].delegator == "alice"
        assert log[0].delegatee == "bob"
        assert log[0].type_label == "t1"
        assert [entry.sequence for entry in log] == [0, 1]

    def test_log_is_a_copy(self, delegation):
        _, proxy, _, ciphertext, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        proxy.reencrypt(ciphertext, "KGC2", "bob")
        snapshot = proxy.log
        snapshot.clear()
        assert len(proxy.log) == 1

    def test_refused_requests_not_logged(self, delegation):
        _, proxy, _, ciphertext, _, _ = delegation
        with pytest.raises(NoProxyKeyError):
            proxy.reencrypt(ciphertext, "KGC2", "bob")
        assert proxy.log == []


class TestDomainSeparation:
    def test_same_name_in_two_domains_does_not_merge(self, pre_setting, group, rng):
        """Regression: 'alice'@KGC1 and 'alice'@KGC3 are different identities."""
        scheme, _, kgc2, alice_kgc1, _ = pre_setting
        from repro.ibe.kgc import KeyGenerationCenter

        kgc3 = KeyGenerationCenter(group, "KGC3", rng)
        alice_kgc3 = kgc3.extract("alice")
        proxy = ProxyService(scheme)
        proxy.install_key(scheme.pextract(alice_kgc1, "bob", "t1", kgc2.params, rng))
        proxy.install_key(scheme.pextract(alice_kgc3, "carol", "t9", kgc2.params, rng))

        assert proxy.delegations_for("alice", "KGC1") == [("bob", "t1")]
        assert proxy.delegations_for("alice", "KGC3") == [("carol", "t9")]
        assert proxy.delegations_for("alice", "KGC7") == []

    def test_ambiguous_name_without_domain_refuses(self, pre_setting, group, rng):
        scheme, _, kgc2, alice_kgc1, _ = pre_setting
        from repro.core.scheme import DelegationError
        from repro.ibe.kgc import KeyGenerationCenter

        kgc3 = KeyGenerationCenter(group, "KGC3", rng)
        proxy = ProxyService(scheme)
        proxy.install_key(scheme.pextract(alice_kgc1, "bob", "t1", kgc2.params, rng))
        proxy.install_key(scheme.pextract(kgc3.extract("alice"), "bob", "t1", kgc2.params, rng))
        with pytest.raises(DelegationError):
            proxy.delegations_for("alice")

    def test_unique_name_without_domain_still_works(self, pre_setting, rng):
        scheme, _, kgc2, alice, _ = pre_setting
        proxy = ProxyService(scheme)
        proxy.install_key(scheme.pextract(alice, "bob", "t1", kgc2.params, rng))
        assert proxy.delegations_for("alice") == [("bob", "t1")]


class TestBoundedLog:
    def test_log_drops_oldest_beyond_cap(self, delegation):
        _, proxy, _, ciphertext, proxy_key, _ = delegation
        proxy.max_log_entries = 3
        proxy.__post_init__()  # re-apply the bound
        proxy.install_key(proxy_key)
        for _ in range(5):
            proxy.reencrypt(ciphertext, "KGC2", "bob")
        log = proxy.log
        assert len(log) == 3
        assert [entry.sequence for entry in log] == [2, 3, 4]
        assert proxy.transformations_total == 5

    def test_constructor_bound(self, delegation):
        scheme, _, _, ciphertext, proxy_key, _ = delegation
        proxy = ProxyService(scheme, max_log_entries=2)
        proxy.install_key(proxy_key)
        for _ in range(4):
            proxy.reencrypt(ciphertext, "KGC2", "bob")
        assert len(proxy.log) == 2
        assert proxy.transformations_total == 4

    def test_rejects_nonpositive_bound(self, pre_setting):
        scheme = pre_setting[0]
        with pytest.raises(ValueError):
            ProxyService(scheme, max_log_entries=0)
