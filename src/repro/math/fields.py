"""Finite fields F_p and F_{p^2} = F_p[i] with i^2 = -1.

The quadratic extension uses ``x^2 + 1`` as the reduction polynomial, which
is irreducible exactly when ``p = 3 (mod 4)`` — the congruence our
supersingular curve parameters satisfy.  Elements are immutable value
objects; arithmetic between elements of different fields raises
:class:`ValueError` rather than silently coercing.
"""

from __future__ import annotations

from repro.math import backend as _backend
from repro.math.ntheory import is_quadratic_residue, modinv, sqrt_mod

__all__ = ["PrimeField", "FpElement", "QuadraticExtField", "Fp2Element"]


class PrimeField:
    """The prime field F_p.  Acts as a factory for :class:`FpElement`.

    The characteristic is wrapped by the active
    :class:`~repro.math.backend.IntBackend`; because ``int op backend_int``
    returns the backend type, every reduction mod ``p`` downstream inherits
    the accelerated representation with no further changes.
    """

    __slots__ = ("p",)

    def __init__(self, p: int):
        if p < 2:
            raise ValueError("field characteristic must be at least 2")
        self.p = _backend.active_backend().wrap(p)

    def __call__(self, value: int) -> "FpElement":
        return FpElement(self, value % self.p)

    def zero(self) -> "FpElement":
        return FpElement(self, 0)

    def one(self) -> "FpElement":
        return FpElement(self, 1)

    def random(self, rng) -> "FpElement":
        """Uniform element of F_p."""
        return FpElement(self, rng.randbelow(self.p))

    def random_nonzero(self, rng) -> "FpElement":
        """Uniform element of F_p^*."""
        return FpElement(self, rng.rand_nonzero_below(self.p))

    def __eq__(self, other) -> bool:
        return isinstance(other, PrimeField) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:
        return "PrimeField(p=%d bits)" % self.p.bit_length()


class FpElement:
    """An element of F_p; immutable."""

    __slots__ = ("field", "value")

    def __init__(self, field: PrimeField, value: int):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value % field.p)

    def __setattr__(self, name, value):
        raise AttributeError("FpElement is immutable")

    def _coerce(self, other) -> "FpElement":
        if isinstance(other, FpElement):
            if other.field != self.field:
                raise ValueError("elements belong to different fields")
            return other
        if isinstance(other, int):
            return FpElement(self.field, other)
        return NotImplemented

    def __add__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.value + other.value)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.value - other.value)

    def __rsub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, other.value - self.value)

    def __mul__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return FpElement(self.field, self.value * other.value)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __rtruediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other * self.inverse()

    def __neg__(self):
        return FpElement(self.field, -self.value)

    def __pow__(self, exponent: int):
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FpElement(
            self.field,
            _backend.active_backend().powmod(self.value, exponent, self.field.p),
        )

    def inverse(self) -> "FpElement":
        return FpElement(self.field, modinv(self.value, self.field.p))

    def square(self) -> "FpElement":
        return FpElement(self.field, self.value * self.value)

    def is_zero(self) -> bool:
        return self.value == 0

    def is_square(self) -> bool:
        """True when the element is zero or a quadratic residue."""
        return self.value == 0 or is_quadratic_residue(self.value, self.field.p)

    def sqrt(self) -> "FpElement":
        """One square root (the other is its negation)."""
        return FpElement(self.field, sqrt_mod(self.value, self.field.p))

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.p
        return (
            isinstance(other, FpElement)
            and self.field == other.field
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.value))

    def __int__(self) -> int:
        # int() (not a bare return) so backend values (mpz) stay valid here.
        return int(self.value)

    def __repr__(self) -> str:
        return "Fp(%d)" % self.value


class QuadraticExtField:
    """The field F_{p^2} = F_p[i] / (i^2 + 1), valid for p = 3 (mod 4)."""

    __slots__ = ("base", "p")

    def __init__(self, base: PrimeField):
        if base.p % 4 != 3:
            raise ValueError("x^2 + 1 is reducible unless p = 3 (mod 4)")
        self.base = base
        self.p = base.p

    def __call__(self, a: int | FpElement, b: int | FpElement = 0) -> "Fp2Element":
        a_val = int(a) if isinstance(a, FpElement) else a
        b_val = int(b) if isinstance(b, FpElement) else b
        return Fp2Element(self, a_val % self.p, b_val % self.p)

    def zero(self) -> "Fp2Element":
        return Fp2Element(self, 0, 0)

    def one(self) -> "Fp2Element":
        return Fp2Element(self, 1, 0)

    def i(self) -> "Fp2Element":
        """The square root of -1 used to build the extension."""
        return Fp2Element(self, 0, 1)

    def from_base(self, element: FpElement) -> "Fp2Element":
        if element.field != self.base:
            raise ValueError("element is not from the base field")
        return Fp2Element(self, element.value, 0)

    def random(self, rng) -> "Fp2Element":
        return Fp2Element(self, rng.randbelow(self.p), rng.randbelow(self.p))

    def __eq__(self, other) -> bool:
        return isinstance(other, QuadraticExtField) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("QuadraticExtField", self.p))

    def __repr__(self) -> str:
        return "QuadraticExtField(p=%d bits)" % self.p.bit_length()


class Fp2Element:
    """An element ``a + b*i`` of F_{p^2}; immutable."""

    __slots__ = ("field", "a", "b")

    def __init__(self, field: QuadraticExtField, a: int, b: int):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "a", a % field.p)
        object.__setattr__(self, "b", b % field.p)

    def __setattr__(self, name, value):
        raise AttributeError("Fp2Element is immutable")

    def _coerce(self, other) -> "Fp2Element":
        if isinstance(other, Fp2Element):
            if other.field != self.field:
                raise ValueError("elements belong to different fields")
            return other
        if isinstance(other, int):
            return Fp2Element(self.field, other, 0)
        if isinstance(other, FpElement):
            return self.field.from_base(other)
        return NotImplemented

    def __add__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return Fp2Element(self.field, self.a + other.a, self.b + other.b)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return Fp2Element(self.field, self.a - other.a, self.b - other.b)

    def __rsub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other - self

    def __mul__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        p = self.field.p
        # (a + bi)(c + di) = (ac - bd) + (ad + bc)i
        ac = self.a * other.a
        bd = self.b * other.b
        # Karatsuba-style: ad + bc = (a+b)(c+d) - ac - bd
        cross = (self.a + self.b) * (other.a + other.b) - ac - bd
        return Fp2Element(self.field, (ac - bd) % p, cross % p)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self * other.inverse()

    def __rtruediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other * self.inverse()

    def __neg__(self):
        return Fp2Element(self.field, -self.a, -self.b)

    def __pow__(self, exponent: int) -> "Fp2Element":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = self.field.one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def conjugate(self) -> "Fp2Element":
        """The Frobenius conjugate ``a - b*i`` (equals Frobenius for p=3 mod 4)."""
        return Fp2Element(self.field, self.a, -self.b)

    def norm(self) -> int:
        """The field norm ``a^2 + b^2`` as an integer mod p."""
        return (self.a * self.a + self.b * self.b) % self.field.p

    def inverse(self) -> "Fp2Element":
        n = self.norm()
        if n == 0:
            raise ZeroDivisionError("0 has no inverse in F_p^2")
        n_inv = modinv(n, self.field.p)
        return Fp2Element(self.field, self.a * n_inv, -self.b * n_inv)

    def square(self) -> "Fp2Element":
        p = self.field.p
        # (a + bi)^2 = (a-b)(a+b) + 2abi
        return Fp2Element(
            self.field, (self.a - self.b) * (self.a + self.b) % p, 2 * self.a * self.b % p
        )

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def is_one(self) -> bool:
        return self.a == 1 and self.b == 0

    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            return self.b == 0 and self.a == other % self.field.p
        return (
            isinstance(other, Fp2Element)
            and self.field == other.field
            and self.a == other.a
            and self.b == other.b
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.a, self.b))

    def __repr__(self) -> str:
        return "Fp2(%d + %d*i)" % (self.a, self.b)
