"""Shared fixtures for the experiment benchmarks (E1-E7).

Most experiments run on SS256 (fast enough for statistics, large enough to
be representative); E1 sweeps TOY/SS256/SS512 to show how costs scale with
the security level.  Everything is seeded for reproducibility.
"""

from __future__ import annotations

import pytest

from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup

@pytest.fixture(scope="session")
def group() -> PairingGroup:
    return PairingGroup.shared("SS256")


@pytest.fixture()
def rng() -> HmacDrbg:
    return HmacDrbg("benchmark-rng")


@pytest.fixture(scope="session")
def delegation_setting(group):
    """Scheme, KGCs and keys, built once per session."""
    rng = HmacDrbg("bench-setting")
    registry = KgcRegistry(group, rng)
    kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    bob = kgc2.extract("bob")
    return scheme, kgc1, kgc2, alice, bob
