"""repro: a full reproduction of "A Type-and-Identity-based Proxy
Re-Encryption Scheme and its Application in Healthcare" (Ibraimi, Tang,
Hartel, Jonker; 2008).

The package layers, bottom to top:

* :mod:`repro.math`, :mod:`repro.ec`, :mod:`repro.pairing` -- a from-scratch
  type-A (supersingular) pairing substrate.
* :mod:`repro.ibe` -- Boneh--Franklin IBE with multi-domain KGCs.
* :mod:`repro.core` -- the paper's type-and-identity-based PRE scheme.
* :mod:`repro.baselines` -- every PRE scheme in the related-work comparison.
* :mod:`repro.security` -- executable attack games and property checks.
* :mod:`repro.hybrid`, :mod:`repro.serialization` -- KEM/DEM and wire formats.
* :mod:`repro.phr` -- the fine-grained PHR disclosure application.
* :mod:`repro.service` -- a sharded, cached re-encryption gateway with
  batching, rate limiting and metrics.

Quickstart::

    from repro import PairingGroup, TypeAndIdentityPre, KgcRegistry

    group = PairingGroup("SS512")
    registry = KgcRegistry(group)
    kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
    alice, bob = kgc1.extract("alice"), kgc2.extract("bob")

    pre = TypeAndIdentityPre(group)
    ct = pre.encrypt(kgc1.params, alice, group.random_gt(), "illness-history")
    rk = pre.pextract(alice, "bob", "illness-history", kgc2.params)
    m = pre.decrypt_reencrypted(pre.preenc(ct, rk), bob)
"""

from repro.core import EpochSchedule, ProxyService, TemporalPre, TypeAndIdentityPre
from repro.hybrid import HybridPre
from repro.ibe import (
    BonehFranklinIbe,
    FullIdentIbe,
    KeyGenerationCenter,
    KgcRegistry,
    ThresholdKgc,
)
from repro.math.drbg import HmacDrbg, system_random
from repro.pairing import PairingGroup
from repro.phr import PhrSystem
from repro.service import ReEncryptionGateway

__version__ = "1.0.0"

__all__ = [
    "PairingGroup",
    "TypeAndIdentityPre",
    "ProxyService",
    "ReEncryptionGateway",
    "BonehFranklinIbe",
    "KeyGenerationCenter",
    "KgcRegistry",
    "HybridPre",
    "PhrSystem",
    "TemporalPre",
    "EpochSchedule",
    "FullIdentIbe",
    "ThresholdKgc",
    "HmacDrbg",
    "system_random",
    "__version__",
]
