"""Executable demonstrations of the PRE property matrix (Section 4.3 / E4).

The paper (following Ateniese et al.) discusses uni-directionality,
non-interactivity and collusion safety.  Rather than asserting these as
flags, each function here *runs the attack* that distinguishes the
property and reports what happened.  Functions return True when the
property holds for the scheme under test (or when the documented attack
succeeds for schemes known to lack the property — see each docstring).
"""

from __future__ import annotations

from repro.baselines.bbs import BbsProxyScheme
from repro.baselines.dodis_ivan import DodisIvanScheme
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import RandomSource
from repro.pairing.group import PairingGroup

__all__ = [
    "bbs_is_bidirectional",
    "bbs_collusion_recovers_secret",
    "dodis_ivan_collusion_recovers_secret",
    "tipre_collusion_recovers_only_type_key",
    "tipre_type_isolation_holds",
    "tipre_is_non_interactive",
    "tipre_delegation_is_unidirectional",
]


def bbs_is_bidirectional(group: PairingGroup, rng: RandomSource) -> bool:
    """BBS: the inverted proxy key converts delegatee->delegator ciphertexts.

    Returns True when the *attack works*, i.e. the scheme is bidirectional.
    """
    scheme = BbsProxyScheme(group)
    alice, bob = scheme.keygen(rng), scheme.keygen(rng)
    pi = scheme.rekey(alice.secret, bob.secret)
    message = group.random_g1(rng)
    # A ciphertext for Bob, converted *backwards* with pi^(-1):
    bob_ct = scheme.encrypt("bob", bob.public, message, rng)
    back = scheme.reencrypt(bob_ct, scheme.invert_rekey(pi), "alice")
    return scheme.decrypt(back, alice.secret) == message


def bbs_collusion_recovers_secret(group: PairingGroup, rng: RandomSource) -> bool:
    """BBS: proxy + delegatee recover the delegator's full secret key."""
    scheme = BbsProxyScheme(group)
    alice, bob = scheme.keygen(rng), scheme.keygen(rng)
    pi = scheme.rekey(alice.secret, bob.secret)
    return scheme.collusion_recover_secret(pi, bob.secret) == alice.secret


def dodis_ivan_collusion_recovers_secret(group: PairingGroup, rng: RandomSource) -> bool:
    """Dodis--Ivan: the two shares reassemble the delegator's secret."""
    scheme = DodisIvanScheme(group)
    alice = scheme.keygen(rng)
    shares = scheme.split(alice.secret, rng)
    return scheme.collusion_recover_secret(shares, group.order) == alice.secret


def _tipre_setting(group: PairingGroup, rng: RandomSource):
    """Common fixture: two KGCs, delegator alice, delegatee bob."""
    registry = KgcRegistry(group, rng)
    kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    bob = kgc2.extract("bob")
    return scheme, kgc1, kgc2, alice, bob


def tipre_collusion_recovers_only_type_key(group: PairingGroup, rng: RandomSource) -> bool:
    """The paper's collusion-safety claim, demonstrated in three steps.

    Proxy + delegatee for type ``t`` jointly compute
    ``K = H1(X) - rk = sk^{H2(sk||t)}``.  Then:

    1. ``K`` decrypts type-``t`` ciphertexts (the concession the paper
       makes: "the delegatee is allowed to see" those);
    2. ``K`` does *not* decrypt ciphertexts of another type;
    3. ``K`` differs from the delegator's actual private key.
    """
    scheme, kgc1, kgc2, alice, bob = _tipre_setting(group, rng)
    proxy_key = scheme.pextract(alice, "bob", "type-t", kgc2.params, rng)
    # Collusion: bob decrypts the blind, the proxy contributes rk_point.
    blind = BonehFranklinIbe(group, "KGC2").decrypt(proxy_key.encrypted_blind, bob)
    blind_point = group.hash_to_g1(b"tipre-blind|" + group.serialize_gt(blind))
    type_key = group.g1_add(blind_point, group.g1_neg(proxy_key.rk_point))

    message = group.random_gt(rng)
    ct_t = scheme.encrypt(kgc1.params, alice, message, "type-t", rng)
    ct_other = scheme.encrypt(kgc1.params, alice, message, "type-u", rng)

    decrypt_with_k = lambda ct: group.gt_div(ct.c2, group.pair(type_key, ct.c1))
    step1 = decrypt_with_k(ct_t) == message
    step2 = decrypt_with_k(ct_other) != message
    step3 = type_key != alice.point
    return step1 and step2 and step3


def tipre_type_isolation_holds(group: PairingGroup, rng: RandomSource) -> bool:
    """A proxy key for type ``t`` garbles ciphertexts of type ``u``."""
    scheme, kgc1, kgc2, alice, bob = _tipre_setting(group, rng)
    proxy_key = scheme.pextract(alice, "bob", "type-t", kgc2.params, rng)
    message = group.random_gt(rng)
    ct_other = scheme.encrypt(kgc1.params, alice, message, "type-u", rng)
    mixed = scheme.preenc(ct_other, proxy_key, unchecked=True)
    return scheme.decrypt_reencrypted(mixed, bob) != message


def tipre_is_non_interactive(group: PairingGroup, rng: RandomSource) -> bool:
    """Pextract succeeds given only the delegator's key and *public* data.

    The check is structural and behavioural: the proxy key is generated
    without touching KGC2's master key or Bob's private key, and the
    resulting delegation still round-trips.
    """
    scheme, kgc1, kgc2, alice, _ = _tipre_setting(group, rng)
    # Note: only alice's key and kgc2's *public* params cross this call.
    proxy_key = scheme.pextract(alice, "bob", "type-t", kgc2.params, rng)
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(kgc1.params, alice, message, "type-t", rng)
    transformed = scheme.preenc(ciphertext, proxy_key)
    bob = kgc2.extract("bob")  # extracted only now, after delegation
    return scheme.decrypt_reencrypted(transformed, bob) == message


def tipre_delegation_is_unidirectional(group: PairingGroup, rng: RandomSource) -> bool:
    """A proxy key alice->bob gives no transformation bob->alice.

    Structurally the key embeds ``sk_alice``; behaviourally, using the
    machinery in reverse (treating bob as the delegator with the same key)
    fails to produce alice-decryptable output for bob's ciphertexts.
    """
    scheme, kgc1, kgc2, alice, bob = _tipre_setting(group, rng)
    proxy_key = scheme.pextract(alice, "bob", "type-t", kgc2.params, rng)
    # Bob (as a delegator in his own right, at KGC2-as-domain-1) encrypts:
    message = group.random_gt(rng)
    bob_ciphertext = scheme.encrypt(kgc2.params, bob, message, "type-t", rng)
    # Reversing the alice->bob key on bob's ciphertext must not help alice.
    mixed = scheme.preenc(bob_ciphertext, proxy_key, unchecked=True)
    recovered_blind_free = group.gt_div(
        mixed.c2, group.pair(alice.point, mixed.c1)
    )
    return recovered_blind_free != message
