"""Tests for Boneh--Franklin IBE (both variants) and the KGC registry."""

import pytest

from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.kgc import KeyGenerationCenter, KgcRegistry
from repro.ibe.keys import IbeMasterKey, IbeParams
from repro.math.drbg import HmacDrbg


@pytest.fixture()
def ibe(group):
    return BonehFranklinIbe(group, "KGC-A")


@pytest.fixture()
def setup(ibe, rng):
    return ibe.setup(rng)


class TestSetupExtract:
    def test_setup_outputs(self, ibe, setup, group):
        params, master = setup
        assert params.domain == "KGC-A"
        assert params.group_name == group.params.name
        assert group.params.is_in_subgroup(params.public_key)
        assert 1 <= master.alpha < group.order

    def test_public_key_matches_master(self, ibe, setup, group):
        params, master = setup
        assert params.public_key == group.g1_mul(group.generator, master.alpha)

    def test_extract_is_h1_to_alpha(self, ibe, setup, group):
        params, master = setup
        key = ibe.extract(master, "alice")
        assert key.point == group.g1_mul(ibe.public_key_of("alice"), master.alpha)
        assert key.identity == "alice"

    def test_extract_wrong_domain_rejected(self, ibe, setup):
        with pytest.raises(ValueError):
            ibe.extract(IbeMasterKey(domain="KGC-B", alpha=1), "alice")

    def test_identity_keys_domain_separated(self, group, rng):
        ibe_a = BonehFranklinIbe(group, "KGC-A")
        ibe_b = BonehFranklinIbe(group, "KGC-B")
        assert ibe_a.public_key_of("alice") != ibe_b.public_key_of("alice")


class TestMultiplicativeVariant:
    def test_round_trip(self, ibe, setup, group, rng):
        params, master = setup
        message = group.random_gt(rng)
        ciphertext = ibe.encrypt(params, message, "alice", rng)
        assert ibe.decrypt(ciphertext, ibe.extract(master, "alice")) == message

    def test_wrong_identity_key_fails(self, ibe, setup, group, rng):
        params, master = setup
        message = group.random_gt(rng)
        ciphertext = ibe.encrypt(params, message, "alice", rng)
        assert ibe.decrypt(ciphertext, ibe.extract(master, "bob")) != message

    def test_randomised(self, ibe, setup, group, rng):
        params, _ = setup
        message = group.random_gt(rng)
        c1 = ibe.encrypt(params, message, "alice", rng)
        c2 = ibe.encrypt(params, message, "alice", rng)
        assert c1.c1 != c2.c1 and c1.c2 != c2.c2

    def test_cross_domain_params_rejected(self, group, setup, rng):
        params, _ = setup
        other = BonehFranklinIbe(group, "KGC-B")
        with pytest.raises(ValueError):
            other.encrypt(params, group.random_gt(rng), "alice", rng)

    def test_cross_domain_ciphertext_rejected(self, ibe, setup, group, rng):
        params, master = setup
        ciphertext = ibe.encrypt(params, group.random_gt(rng), "alice", rng)
        other = BonehFranklinIbe(group, "KGC-B")
        other_params, other_master = other.setup(rng)
        with pytest.raises(ValueError):
            other.decrypt(ciphertext, other.extract(other_master, "alice"))

    def test_wrong_group_params_rejected(self, ibe, rng, group):
        fake = IbeParams(group_name="SS512", domain="KGC-A", public_key=group.generator)
        with pytest.raises(ValueError):
            ibe.encrypt(fake, group.random_gt(rng), "alice", rng)


class TestXorVariant:
    def test_round_trip(self, ibe, setup, rng):
        params, master = setup
        message = b"the illness history of alice"
        ciphertext = ibe.encrypt_bytes(params, message, "alice", rng)
        assert ibe.decrypt_bytes(ciphertext, ibe.extract(master, "alice")) == message

    def test_empty_message(self, ibe, setup, rng):
        params, master = setup
        ciphertext = ibe.encrypt_bytes(params, b"", "alice", rng)
        assert ibe.decrypt_bytes(ciphertext, ibe.extract(master, "alice")) == b""

    def test_long_message(self, ibe, setup, rng):
        params, master = setup
        message = bytes(range(256)) * 5
        ciphertext = ibe.encrypt_bytes(params, message, "alice", rng)
        assert ibe.decrypt_bytes(ciphertext, ibe.extract(master, "alice")) == message

    def test_wrong_key_garbles(self, ibe, setup, rng):
        params, master = setup
        message = b"secret"
        ciphertext = ibe.encrypt_bytes(params, message, "alice", rng)
        assert ibe.decrypt_bytes(ciphertext, ibe.extract(master, "eve")) != message

    def test_ciphertext_hides_message_length_only(self, ibe, setup, rng):
        params, _ = setup
        ciphertext = ibe.encrypt_bytes(params, b"12345", "alice", rng)
        assert len(ciphertext.c2) == 5  # XOR pad: same length as plaintext


class TestKgc:
    def test_extract_idempotent(self, group, rng):
        kgc = KeyGenerationCenter(group, "KGC-X", rng)
        assert kgc.extract("alice") is kgc.extract("alice")
        assert kgc.has_issued("alice")
        assert not kgc.has_issued("bob")
        assert kgc.issued_identities() == ["alice"]

    def test_registry_create_get(self, group, rng):
        registry = KgcRegistry(group, rng)
        kgc = registry.create("D1")
        assert registry.get("D1") is kgc
        assert "D1" in registry
        assert registry.domains() == ["D1"]

    def test_registry_duplicate_rejected(self, group, rng):
        registry = KgcRegistry(group, rng)
        registry.create("D1")
        with pytest.raises(ValueError):
            registry.create("D1")

    def test_registry_missing_domain(self, group, rng):
        with pytest.raises(KeyError):
            KgcRegistry(group, rng).get("nope")

    def test_domains_have_distinct_masters(self, group, rng):
        registry = KgcRegistry(group, rng)
        d1, d2 = registry.create("D1"), registry.create("D2")
        assert d1.params.public_key != d2.params.public_key
