"""Concurrent shard execution: per-shard locks plus an optional thread pool.

The gateway's consistency unit is the shard — every key for a delegation
lives on exactly one shard, so operations on *different* shards commute
while operations on the *same* shard must serialize (the key table and
the transformation log are plain Python structures).  :class:`ShardPool`
encodes precisely that: one reentrant lock per shard, an optional
``ThreadPoolExecutor`` to overlap independent shards, and a
whole-fleet lock ordering for structural changes (resize).

With ``workers=0`` the pool degrades to inline sequential execution —
same code path, no threads — which keeps single-threaded deployments
free of executor overhead and makes the batched/sequential equivalence
tests meaningful.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence, TypeVar

__all__ = ["ShardPool"]

T = TypeVar("T")


class ShardPool:
    """Runs shard-addressed tasks under per-shard mutual exclusion."""

    def __init__(self, shard_names: Sequence[str], workers: int = 0):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self._fleet_lock = threading.RLock()  # serializes lock_all holders
        self._locks: dict[str, threading.RLock] = {
            name: threading.RLock() for name in shard_names
        }
        self._executor = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="shard")
            if workers > 0
            else None
        )

    @property
    def shard_names(self) -> list[str]:
        return sorted(self._locks)

    @contextmanager
    def lock(self, shard_name: str) -> Iterator[None]:
        """Hold the named shard's lock for the duration of the block."""
        with self._locks[shard_name]:
            yield

    def lock_object(self, shard_name: str) -> threading.RLock | None:
        """The raw lock for a shard, or None if the shard is gone (resized away)."""
        return self._locks.get(shard_name)

    @contextmanager
    def lock_all(self) -> Iterator[None]:
        """Hold *every* shard lock, acquired in sorted-name order.

        The single acquisition order makes fleet-wide operations (resize,
        durable close) deadlock-free against per-shard work.  Fleet
        operations additionally serialize on one admin lock: a second
        ``lock_all`` waiting behind a resize must snapshot the lock set
        *after* that resize's ``set_shards`` rewrote it, or it would hold
        the retired fleet's locks while the new shards go unguarded.
        """
        with self._fleet_lock:
            held = [self._locks[name] for name in sorted(self._locks)]
            for lock in held:
                lock.acquire()
            try:
                yield
            finally:
                for lock in reversed(held):
                    lock.release()

    def __contains__(self, shard_name: str) -> bool:
        return shard_name in self._locks

    def run(self, shard_name: str | None, task: Callable[[], T]) -> T:
        """Execute one task inline under its shard's lock.

        ``shard_name=None`` runs the task without pool-level locking, for
        tasks that acquire (and re-validate) their own shard lock — the
        pattern the gateway uses so a task never holds two shard locks.
        """
        if shard_name is None:
            return task()
        with self._locks[shard_name]:
            return task()

    def run_many(self, tasks: Sequence[tuple[str | None, Callable[[], T]]]) -> list[T]:
        """Execute ``(shard_name, task)`` pairs, each under its shard lock.

        With workers, tasks run on the executor and results return in
        submission order; without, they run inline in submission order —
        identical semantics either way because same-shard tasks serialize
        on the shard lock.  In both modes *every* task runs to completion
        before an error propagates, and the first failure (in submission
        order) is re-raised — so the side effects of a failed call, not
        just its result, are the same with and without workers.
        """
        if self._executor is None:
            outcomes = []
            for name, task in tasks:
                try:
                    outcomes.append((self.run(name, task), None))
                except Exception as error:  # noqa: BLE001 - re-raised below
                    outcomes.append((None, error))
            return self._unwrap(outcomes)
        futures = [self._executor.submit(self.run, name, task) for name, task in tasks]
        outcomes = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except Exception as error:  # noqa: BLE001 - re-raised below
                outcomes.append((None, error))
        return self._unwrap(outcomes)

    @staticmethod
    def _unwrap(outcomes: list[tuple[T, Exception | None]]) -> list[T]:
        for _, error in outcomes:
            if error is not None:
                raise error
        return [result for result, _ in outcomes]

    def set_shards(self, shard_names: Sequence[str]) -> None:
        """Re-key the lock set after a resize (existing locks are kept).

        Callers must hold :meth:`lock_all` — the fleet cannot change shape
        while per-shard work is in flight.
        """
        self._locks = {
            name: self._locks.get(name, threading.RLock()) for name in shard_names
        }

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
