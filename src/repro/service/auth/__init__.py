"""Wire security for the gateway: TLS, tenant authentication, isolation.

The paper's proxy is *semi-trusted*: it transforms ciphertexts it cannot
read, but it must still know — and enforce — who is asking.  This
package supplies that layer for the HTTP wire:

* :mod:`repro.service.auth.credentials` — the per-tenant secret/role
  registry (one JSON file, atomic rewrite, lazy reload);
* :mod:`repro.service.auth.signing` — HMAC-SHA256 request signing with
  a replay-nonce window and clock-skew bounds, carried in the
  ``X-Repro-Auth`` header;
* :mod:`repro.service.auth.policy` — per-tenant rate/quota/batch limits
  replacing the gateway's global token-bucket defaults;
* :mod:`repro.service.auth.tls` — stdlib ``ssl`` contexts for the
  server socket and the pooled client (with CA pinning);
* :mod:`repro.service.auth.errors` — the auth slice of the gateway's
  closed error taxonomy (401-shaped authentication codes plus
  ``auth-forbidden`` for role denials).

Everything is opt-in: a server without ``--tenant-config`` accepts
anonymous requests exactly as before, so existing tests, benches and
examples run unchanged.
"""

from repro.service.auth.credentials import (
    DEFAULT_ROLES,
    TenantCredential,
    TenantCredentialStore,
)
from repro.service.auth.errors import (
    AuthenticationError,
    AuthRequiredError,
    BadSignatureError,
    ForbiddenError,
    ReplayedNonceError,
    StaleTimestampError,
    UnknownTenantError,
)
from repro.service.auth.policy import PolicyEngine
from repro.service.auth.signing import (
    AUTH_HEADER,
    ReplayWindow,
    RequestSigner,
    RequestVerifier,
    build_auth_header,
    canonical_request,
    parse_auth_header,
    sign_request,
)
from repro.service.auth.tls import client_context, server_context

__all__ = [
    "AUTH_HEADER",
    "AuthenticationError",
    "AuthRequiredError",
    "BadSignatureError",
    "DEFAULT_ROLES",
    "ForbiddenError",
    "PolicyEngine",
    "ReplayWindow",
    "ReplayedNonceError",
    "RequestSigner",
    "RequestVerifier",
    "StaleTimestampError",
    "TenantCredential",
    "TenantCredentialStore",
    "UnknownTenantError",
    "build_auth_header",
    "canonical_request",
    "client_context",
    "parse_auth_header",
    "server_context",
    "sign_request",
]
