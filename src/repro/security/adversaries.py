"""Adversary strategies for the security games.

Each adversary is a callable taking a fresh game (challenger) and a
:class:`~repro.math.drbg.RandomSource` and returning its guess result.  The
strategies implement the concrete attack ideas the threat model (Section
4.2) allows — plus the ones the scheme is *supposed* to defeat, so that
experiment E6 can measure their advantage staying at ~0:

* :class:`RandomGuessAdversary` — the baseline, advantage exactly ~0.
* :class:`TypeMixingAdversary` — obtains a legitimate proxy key for a
  *different* type, applies it to the challenge ciphertext (bypassing the
  proxy's metadata check, as a corrupted proxy would) and decrypts with a
  legitimately extracted delegatee key.  Defeating this is the paper's
  headline claim.
* :class:`ColludingDelegateeAdversary` — proxy + delegatee pool their
  material for type ``t != t*`` (recovering the per-type key, which the
  paper concedes) and attack the challenge of type ``t*`` with it.
* :class:`PreencObserverAdversary` — exercises the ``Preenc+`` oracle
  (the curious delegatee's view) before guessing.
* :class:`SideDomainAdversary` — extracts arbitrary other identities in
  both domains, checking that unrelated keys carry no information.
"""

from __future__ import annotations

from repro.math.drbg import RandomSource
from repro.pairing.group import PairingGroup
from repro.security.games import GameResult, IndIdDrCpaGame

__all__ = [
    "RandomGuessAdversary",
    "TypeMixingAdversary",
    "ColludingDelegateeAdversary",
    "PreencObserverAdversary",
    "SideDomainAdversary",
    "ALL_DR_CPA_ADVERSARIES",
]

_TARGET_ID = "alice@kgc1"
_DELEGATEE_ID = "bob@kgc2"
_CHALLENGE_TYPE = "illness-history"
_OTHER_TYPE = "food-statistics"


class RandomGuessAdversary:
    """Ignores everything and flips a coin: the advantage-zero baseline."""

    name = "random-guess"

    def __call__(self, game: IndIdDrCpaGame, group: PairingGroup, rng: RandomSource) -> GameResult:
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        game.challenge(m0, m1, _CHALLENGE_TYPE, _TARGET_ID)
        return game.finish(rng.randbelow(2))


class TypeMixingAdversary:
    """Applies a wrong-type proxy key to the challenge ciphertext.

    All queries are legal: ``Pextract(id*, id', t')`` with ``t' != t*`` does
    not trigger constraint (b), so ``Extract2(id')`` is allowed.  The attack
    then replays the proxy computation (``c2 * e(c1, rk)``) itself — a
    corrupted proxy ignoring the type label — and decrypts as the delegatee.
    If the result matches ``m0`` or ``m1``, guess accordingly.
    """

    name = "type-mixing"

    def __call__(self, game: IndIdDrCpaGame, group: PairingGroup, rng: RandomSource) -> GameResult:
        proxy_key = game.pextract(_TARGET_ID, _DELEGATEE_ID, _OTHER_TYPE)
        delegatee_key = game.extract2(_DELEGATEE_ID)
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        challenge = game.challenge(m0, m1, _CHALLENGE_TYPE, _TARGET_ID)
        mixed = game.scheme.preenc(challenge, proxy_key, unchecked=True)
        recovered = game.scheme.decrypt_reencrypted(
            type(mixed)(
                delegator_domain=mixed.delegator_domain,
                delegator=mixed.delegator,
                delegatee_domain=mixed.delegatee_domain,
                delegatee=mixed.delegatee,
                type_label=mixed.type_label,
                c1=mixed.c1,
                c2=mixed.c2,
                encrypted_blind=mixed.encrypted_blind,
            ),
            delegatee_key,
        )
        if recovered == m0:
            return game.finish(0)
        if recovered == m1:
            return game.finish(1)
        return game.finish(rng.randbelow(2))


class ColludingDelegateeAdversary:
    """Proxy + delegatee recover the type-``t'`` key, then attack type ``t*``.

    The colluders compute ``K = sk_i^{H2(sk_i||t')} = H1(X) - rk`` (the
    delegatee knows ``X``), which decrypts any type-``t'`` ciphertext.  The
    game verifies the challenge of type ``t*`` stays hidden from ``K``.
    """

    name = "collusion-other-type"

    def __call__(self, game: IndIdDrCpaGame, group: PairingGroup, rng: RandomSource) -> GameResult:
        proxy_key = game.pextract(_TARGET_ID, _DELEGATEE_ID, _OTHER_TYPE)
        delegatee_key = game.extract2(_DELEGATEE_ID)
        # Collusion: delegatee decrypts X, and with the proxy's rk they get
        # K = H1(X) - rk = sk^{H2(sk||t')}.
        from repro.ibe.boneh_franklin import BonehFranklinIbe

        blind = BonehFranklinIbe(group, delegatee_key.domain).decrypt(
            proxy_key.encrypted_blind, delegatee_key
        )
        blind_point = group.hash_to_g1(b"tipre-blind|" + group.serialize_gt(blind))
        type_key = group.g1_add(blind_point, group.g1_neg(proxy_key.rk_point))
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        challenge = game.challenge(m0, m1, _CHALLENGE_TYPE, _TARGET_ID)
        # Attempt direct decryption of the t* challenge with the t' key:
        # m' = c2 / e(K, c1); correct only if the type exponents matched.
        recovered = group.gt_div(challenge.c2, group.pair(type_key, challenge.c1))
        if recovered == m0:
            return game.finish(0)
        if recovered == m1:
            return game.finish(1)
        return game.finish(rng.randbelow(2))


class PreencObserverAdversary:
    """Uses the ``Preenc+`` oracle on chosen plaintexts before guessing.

    A curious delegatee sees re-encryptions of the delegator's plaintexts;
    the strategy checks those views leak nothing about the fresh challenge
    randomness.
    """

    name = "preenc-observer"

    def __call__(self, game: IndIdDrCpaGame, group: PairingGroup, rng: RandomSource) -> GameResult:
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        observed = [
            game.preenc_dagger(m, _CHALLENGE_TYPE, _TARGET_ID, _DELEGATEE_ID) for m in (m0, m1)
        ]
        delegatee_key = game.extract2(_DELEGATEE_ID)
        # The delegatee really can read the oracle outputs...
        seen = {game.scheme.decrypt_reencrypted(c, delegatee_key) for c in observed}
        assert seen == {m0, m1}, "Preenc+ oracle must be functionally correct"
        # ...but the challenge uses fresh randomness, so nothing carries over.
        challenge = game.challenge(m0, m1, _CHALLENGE_TYPE, _TARGET_ID)
        for candidate, guess in ((m0, 0), (m1, 1)):
            for prior in observed:
                if challenge.c2 == prior.c2 and candidate in seen:
                    return game.finish(guess)
        return game.finish(rng.randbelow(2))


class SideDomainAdversary:
    """Extracts many unrelated identities in both domains before guessing."""

    name = "side-domain-extractor"

    def __call__(self, game: IndIdDrCpaGame, group: PairingGroup, rng: RandomSource) -> GameResult:
        for i in range(3):
            game.extract1("other-%d@kgc1" % i)
            game.extract2("other-%d@kgc2" % i)
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        challenge = game.challenge(m0, m1, _CHALLENGE_TYPE, _TARGET_ID)
        # Unrelated keys decrypt the challenge to garbage; check and guess.
        stray = game.extract1("other-0@kgc1")
        exponent = game.scheme.type_exponent(stray, _CHALLENGE_TYPE)
        mask = group.gt_exp(group.pair(stray.point, challenge.c1), exponent)
        recovered = group.gt_div(challenge.c2, mask)
        if recovered == m0:
            return game.finish(0)
        if recovered == m1:
            return game.finish(1)
        return game.finish(rng.randbelow(2))


ALL_DR_CPA_ADVERSARIES = (
    RandomGuessAdversary(),
    TypeMixingAdversary(),
    ColludingDelegateeAdversary(),
    PreencObserverAdversary(),
    SideDomainAdversary(),
)
