"""Random sources: a seedable HMAC-DRBG and a thin OS-entropy wrapper.

Every randomised algorithm in the library accepts a :class:`RandomSource`.
Production callers use :func:`system_random`; tests and the security-game
harness inject a seeded :class:`HmacDrbg` so experiments are reproducible
bit-for-bit.

The DRBG follows NIST SP 800-90A HMAC_DRBG with SHA-256 (without the
personalisation/reseed bookkeeping that does not matter for a research
library).
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

__all__ = ["RandomSource", "HmacDrbg", "SystemRandomSource", "system_random"]


class RandomSource:
    """Interface for randomness: integers, bits and bytes.

    Subclasses implement :meth:`randbytes`; everything else is derived so the
    distributions are identical across sources.
    """

    def randbytes(self, n: int) -> bytes:
        raise NotImplementedError

    def getrandbits(self, bits: int) -> int:
        """Return a uniform integer in ``[0, 2**bits)``."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.randbytes(nbytes), "big")
        return value >> (nbytes * 8 - bits)

    def randbelow(self, n: int) -> int:
        """Return a uniform integer in ``[0, n)`` by rejection sampling."""
        if n <= 0:
            raise ValueError("randbelow requires a positive bound")
        bits = n.bit_length()
        while True:
            value = self.getrandbits(bits)
            if value < n:
                return value

    def randint(self, a: int, b: int) -> int:
        """Return a uniform integer in the inclusive range ``[a, b]``."""
        if a > b:
            raise ValueError("empty range [%d, %d]" % (a, b))
        return a + self.randbelow(b - a + 1)

    def rand_nonzero_below(self, n: int) -> int:
        """Return a uniform integer in ``[1, n)`` (i.e. Z_n^*, n prime)."""
        if n <= 1:
            raise ValueError("need n > 1 for a nonzero sample")
        return 1 + self.randbelow(n - 1)

    def choice(self, seq):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self.randbelow(len(seq))]

    def shuffle(self, seq: list) -> None:
        """Fisher--Yates shuffle in place."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randbelow(i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def sample(self, seq, k: int) -> list:
        """Return ``k`` distinct elements chosen uniformly without replacement."""
        if k > len(seq):
            raise ValueError("sample larger than population")
        pool = list(seq)
        self.shuffle(pool)
        return pool[:k]


class HmacDrbg(RandomSource):
    """Deterministic HMAC-SHA256 DRBG seeded from arbitrary bytes or text."""

    _HASHLEN = 32

    def __init__(self, seed: bytes | str | int):
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        elif isinstance(seed, int):
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big")
        self._key = b"\x00" * self._HASHLEN
        self._value = b"\x01" * self._HASHLEN
        self._update(seed)

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, hashlib.sha256).digest()

    def _update(self, provided: bytes | None) -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + (provided or b""))
        self._value = self._hmac(self._key, self._value)
        if provided:
            self._key = self._hmac(self._key, self._value + b"\x01" + provided)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, data: bytes | str) -> None:
        """Mix extra entropy / domain separation into the state."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._update(data)

    def randbytes(self, n: int) -> bytes:
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        out = bytearray()
        while len(out) < n:
            self._value = self._hmac(self._key, self._value)
            out.extend(self._value)
        self._update(None)
        return bytes(out[:n])

    def fork(self, label: str) -> "HmacDrbg":
        """Derive an independent child DRBG (for per-actor randomness)."""
        child = HmacDrbg(self.randbytes(self._HASHLEN))
        child.reseed(label)
        return child


class SystemRandomSource(RandomSource):
    """OS-entropy random source backed by :mod:`secrets`."""

    def randbytes(self, n: int) -> bytes:
        return secrets.token_bytes(n)


_SYSTEM = SystemRandomSource()


def system_random() -> SystemRandomSource:
    """Return the shared OS-entropy source."""
    return _SYSTEM
