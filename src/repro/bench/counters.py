"""Group-operation counting for cost accounting in benchmarks.

The pairing and group layers call :func:`record_operation` on every
expensive primitive (pairing, G1 scalar multiplication, GT exponentiation,
hash-to-point).  Benchmarks activate an :class:`OperationCounter` context to
attribute those costs to a scheme operation, producing the per-operation
cost tables of experiment E1 without instrument-specific code in the
schemes themselves.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager

__all__ = ["OperationCounter", "record_operation", "count_operations"]

_ACTIVE: list["OperationCounter"] = []


class OperationCounter:
    """A tally of expensive group operations."""

    def __init__(self):
        self.counts: Counter[str] = Counter()

    def record(self, kind: str, amount: int = 1) -> None:
        self.counts[kind] += amount

    def get(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self.counts)

    def total(self) -> int:
        return sum(self.counts.values())

    def __repr__(self) -> str:
        inner = ", ".join("%s=%d" % (k, v) for k, v in sorted(self.counts.items()))
        return "OperationCounter(%s)" % inner


def record_operation(kind: str, amount: int = 1) -> None:
    """Record an operation against every active counter (no-op otherwise)."""
    for counter in _ACTIVE:
        counter.record(kind, amount)


@contextmanager
def count_operations():
    """Context manager yielding a fresh counter active for its duration.

    Counters nest: inner contexts do not steal counts from outer ones.
    """
    counter = OperationCounter()
    _ACTIVE.append(counter)
    try:
        yield counter
    finally:
        _ACTIVE.remove(counter)
