"""Gateway observability: latency, throughput and shard balance.

Everything is snapshot-based: the live :class:`GatewayMetrics` object
accumulates counters and latency samples, and :meth:`GatewayMetrics.snapshot`
freezes them into plain dataclasses the CLI and benchmarks render.  The
clock is injectable so tests assert on exact numbers instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.service.cache import CacheStats

__all__ = ["LatencySummary", "MetricsSnapshot", "GatewayMetrics"]

# Latency samples kept per outcome; enough for stable percentiles without
# unbounded growth on a long-running gateway.
_MAX_SAMPLES = 50_000


@dataclass(frozen=True)
class LatencySummary:
    """Percentiles over the retained samples of one operation kind."""

    count: int
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float

    @staticmethod
    def of(samples: list[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary(count=0, p50_ms=0.0, p90_ms=0.0, p99_ms=0.0, max_ms=0.0)
        ordered = sorted(samples)

        def pct(q: float) -> float:
            # Nearest-rank on n-1: int(q * n) overshoots the rank (p50 of
            # two samples would report the max), inflating every quantile.
            return ordered[int(q * (len(ordered) - 1))]
        return LatencySummary(
            count=len(ordered),
            p50_ms=pct(0.50),
            p90_ms=pct(0.90),
            p99_ms=pct(0.99),
            max_ms=ordered[-1],
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen view of the gateway since construction (or last reset)."""

    requests_total: int
    served: int
    rejected: int
    rate_limited: int
    elapsed_s: float
    shard_requests: dict[str, int]
    latency: dict[str, LatencySummary]
    caches: dict[str, CacheStats]
    resizes: int = 0
    keys_migrated: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.served / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def shard_imbalance(self) -> float:
        """max/mean of per-shard request counts; 1.0 is perfect balance."""
        counts = [c for c in self.shard_requests.values()]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean

    def rows(self) -> list[list[str]]:
        """Render-ready (metric, value) rows for ``repro.bench.report``."""
        rows = [
            ["requests total", str(self.requests_total)],
            ["served", str(self.served)],
            ["rejected (policy)", str(self.rejected)],
            ["rate limited", str(self.rate_limited)],
            ["throughput req/s", "%.1f" % self.throughput_rps],
            ["shard imbalance (max/mean)", "%.2f" % self.shard_imbalance],
        ]
        if self.resizes:
            rows.append(["resizes", str(self.resizes)])
            rows.append(["keys migrated", str(self.keys_migrated)])
        for kind in sorted(self.latency):
            summary = self.latency[kind]
            if summary.count:
                rows.append(
                    ["%s p50/p90 ms" % kind, "%.2f / %.2f" % (summary.p50_ms, summary.p90_ms)]
                )
        for name in sorted(self.caches):
            stats = self.caches[name]
            rows.append(
                [
                    "%s hit rate" % name,
                    "%.1f%% (%d/%d)" % (100 * stats.hit_rate, stats.hits, stats.hits + stats.misses),
                ]
            )
        return rows


@dataclass
class GatewayMetrics:
    """Mutable accumulator the gateway writes into on every request.

    Counter updates take an internal lock: the gateway may observe from
    many shard-pool workers at once, and the stress tests assert that
    ``requests_total == served + rejected + rate_limited`` exactly.
    """

    clock: Callable[[], float] = time.monotonic
    requests_total: int = 0
    served: int = 0
    rejected: int = 0
    rate_limited: int = 0
    resizes: int = 0
    keys_migrated: int = 0
    shard_requests: Counter = field(default_factory=Counter)
    _samples: dict[str, list[float]] = field(default_factory=dict)
    _started_at: float = field(init=False)
    _lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._started_at = self.clock()
        self._lock = threading.Lock()

    def observe(self, kind: str, latency_ms: float, shard: str | None = None) -> None:
        """Record one served operation of ``kind``."""
        with self._lock:
            self.requests_total += 1
            self.served += 1
            if shard is not None:
                self.shard_requests[shard] += 1
            samples = self._samples.setdefault(kind, [])
            if len(samples) < _MAX_SAMPLES:
                samples.append(latency_ms)

    def observe_rejection(self, rate_limited: bool = False) -> None:
        with self._lock:
            self.requests_total += 1
            if rate_limited:
                self.rate_limited += 1
            else:
                self.rejected += 1

    def observe_resize(self, keys_migrated: int) -> None:
        """Record one fleet resize and how many keys it moved."""
        with self._lock:
            self.resizes += 1
            self.keys_migrated += keys_migrated

    def snapshot(self, caches: dict[str, CacheStats] | None = None) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                requests_total=self.requests_total,
                served=self.served,
                rejected=self.rejected,
                rate_limited=self.rate_limited,
                elapsed_s=self.clock() - self._started_at,
                shard_requests=dict(self.shard_requests),
                latency={
                    kind: LatencySummary.of(samples)
                    for kind, samples in self._samples.items()
                },
                caches=dict(caches or {}),
                resizes=self.resizes,
                keys_migrated=self.keys_migrated,
            )
