"""Quickstart: type-and-identity-based proxy re-encryption in ~40 lines.

Alice (registered at KGC1) delegates the decryption right for her
"illness-history" messages — and only those — to Bob (registered at a
completely different KGC2), through an untrusted proxy.

Run:  python examples/quickstart.py
"""

from repro import HmacDrbg, KgcRegistry, PairingGroup, ProxyService, TypeAndIdentityPre

# A deterministic RNG so the walkthrough is reproducible; drop the argument
# (or pass repro.system_random()) for OS entropy.
rng = HmacDrbg("quickstart")

# 1. One shared pairing group; two independent key-generation centers.
group = PairingGroup("SS256")
registry = KgcRegistry(group, rng)
kgc1 = registry.create("KGC1")  # alice's domain
kgc2 = registry.create("KGC2")  # bob's domain

alice = kgc1.extract("alice@example.com")
bob = kgc2.extract("bob@example.org")

# 2. Alice encrypts two messages of *different types* under her identity.
scheme = TypeAndIdentityPre(group)
secret_diagnosis = group.random_gt(rng)  # GT elements; see HybridPre for bytes
food_note = group.random_gt(rng)

ct_illness = scheme.encrypt(kgc1.params, alice, secret_diagnosis, "illness-history", rng)
ct_food = scheme.encrypt(kgc1.params, alice, food_note, "food-statistics", rng)

# 3. She delegates only "illness-history" to Bob: one local Pextract call,
#    no interaction with Bob or either KGC.
proxy = ProxyService(scheme)
proxy.install_key(scheme.pextract(alice, "bob@example.org", "illness-history", kgc2.params, rng))

# 4. The proxy can transform exactly the granted type...
ct_for_bob = proxy.reencrypt(ct_illness, "KGC2", "bob@example.org")
assert scheme.decrypt_reencrypted(ct_for_bob, bob) == secret_diagnosis
print("bob decrypted the re-encrypted illness-history message: OK")

# 5. ...and is cryptographically unable to serve the other type.
try:
    proxy.reencrypt(ct_food, "KGC2", "bob@example.org")
except KeyError as refusal:
    print("proxy refused food-statistics:", refusal)

# Even a *corrupted* proxy that applies the key anyway produces garbage:
garbled = scheme.preenc(ct_food, proxy.get_key(ct_illness, "KGC2", "bob@example.org"),
                        unchecked=True)
assert scheme.decrypt_reencrypted(garbled, bob) != food_note
print("corrupted-proxy type mixing yields garbage: OK")

# 6. Alice still reads everything herself, with her single key pair.
assert scheme.decrypt(ct_illness, alice) == secret_diagnosis
assert scheme.decrypt(ct_food, alice) == food_note
print("alice decrypts both types with one key pair: OK")
