"""Hybrid (KEM/DEM) encryption: GT-element KEM + hash-based authenticated DEM."""

from repro.hybrid.kdf import hkdf, hkdf_expand, hkdf_extract
from repro.hybrid.kem import HybridCiphertext, HybridPre, HybridReEncrypted
from repro.hybrid.symmetric import (
    KEY_LEN,
    NONCE_LEN,
    TAG_LEN,
    AuthenticationError,
    open_sealed,
    seal,
)

__all__ = [
    "HybridPre",
    "HybridCiphertext",
    "HybridReEncrypted",
    "seal",
    "open_sealed",
    "AuthenticationError",
    "hkdf",
    "hkdf_extract",
    "hkdf_expand",
    "KEY_LEN",
    "NONCE_LEN",
    "TAG_LEN",
]
