"""The proxy actor: a semi-trusted re-encryption service.

The proxy of the paper holds re-encryption keys and transforms ciphertexts
on request.  It never sees a private key or a plaintext; its entire state
is the table of :class:`~repro.core.ciphertexts.ProxyKey` objects installed
by delegators.  The class enforces the scheme's fine-grained policy
mechanically: a transformation happens only when a key exists for exactly
the (delegator, delegatee, type) triple of the request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.core.scheme import TypeAndIdentityPre

__all__ = ["ProxyService", "NoProxyKeyError", "ReEncryptionLogEntry"]


class NoProxyKeyError(KeyError):
    """Raised when the proxy holds no key for the requested transformation."""


@dataclass(frozen=True)
class ReEncryptionLogEntry:
    """One entry of the proxy's transformation log."""

    delegator: str
    delegatee: str
    type_label: str
    sequence: int


@dataclass
class ProxyService:
    """A re-encryption proxy holding keys for (delegator, delegatee, type) triples."""

    scheme: TypeAndIdentityPre
    name: str = "proxy"
    _keys: dict[tuple[str, str, str, str, str], ProxyKey] = field(default_factory=dict)
    _log: list[ReEncryptionLogEntry] = field(default_factory=list)

    @staticmethod
    def _index(key: ProxyKey) -> tuple[str, str, str, str, str]:
        return (
            key.delegator_domain,
            key.delegator,
            key.delegatee_domain,
            key.delegatee,
            key.type_label,
        )

    def install_key(self, key: ProxyKey) -> None:
        """Install (or replace) a re-encryption key."""
        self._keys[self._index(key)] = key

    def revoke_key(
        self,
        delegator_domain: str,
        delegator: str,
        delegatee_domain: str,
        delegatee: str,
        type_label: str,
    ) -> bool:
        """Remove a key; returns False when no such key was installed."""
        return (
            self._keys.pop(
                (delegator_domain, delegator, delegatee_domain, delegatee, type_label), None
            )
            is not None
        )

    def key_count(self) -> int:
        return len(self._keys)

    def delegations_for(self, delegator: str) -> list[tuple[str, str]]:
        """All (delegatee, type) pairs this proxy can serve for a delegator."""
        return sorted(
            (key.delegatee, key.type_label)
            for key in self._keys.values()
            if key.delegator == delegator
        )

    def can_reencrypt(
        self, ciphertext: TypedCiphertext, delegatee_domain: str, delegatee: str
    ) -> bool:
        index = (
            ciphertext.domain,
            ciphertext.identity,
            delegatee_domain,
            delegatee,
            ciphertext.type_label,
        )
        return index in self._keys

    def get_key(
        self, ciphertext: TypedCiphertext, delegatee_domain: str, delegatee: str
    ) -> ProxyKey:
        """Look up the key that would transform ``ciphertext`` for a delegatee.

        Raises :class:`NoProxyKeyError` when no matching key is installed.
        """
        index = (
            ciphertext.domain,
            ciphertext.identity,
            delegatee_domain,
            delegatee,
            ciphertext.type_label,
        )
        key = self._keys.get(index)
        if key is None:
            raise NoProxyKeyError(
                "no proxy key for delegator=%r delegatee=%r type=%r"
                % (ciphertext.identity, delegatee, ciphertext.type_label)
            )
        return key

    def reencrypt(
        self, ciphertext: TypedCiphertext, delegatee_domain: str, delegatee: str
    ) -> ReEncryptedCiphertext:
        """Transform ``ciphertext`` for the named delegatee.

        Raises :class:`NoProxyKeyError` when the delegator never delegated
        this ciphertext's type to that delegatee — the fine-grained control
        the paper's construction provides.
        """
        key = self.get_key(ciphertext, delegatee_domain, delegatee)
        result = self.scheme.preenc(ciphertext, key)
        self._log.append(
            ReEncryptionLogEntry(
                delegator=ciphertext.identity,
                delegatee=delegatee,
                type_label=ciphertext.type_label,
                sequence=len(self._log),
            )
        )
        return result

    @property
    def log(self) -> list[ReEncryptionLogEntry]:
        """The transformation log (copy)."""
        return list(self._log)
