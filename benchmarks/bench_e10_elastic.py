"""E10 — the elastic gateway: concurrency, resize cost, crash durability.

Three deployment questions raised by the PR-1 follow-ups:

1. **Concurrent shard execution** — when shards model *remote* proxy
   nodes (each transformation pays a service round-trip), does the
   shard-pool overlap those waits?  Sequential execution pays the RTT
   once per item; concurrent execution pays it once per longest shard
   queue.  The pure single-host CPU case is also reported for honesty:
   under the GIL, threading cannot beat sequential on pairing math, and
   the table says so rather than hiding it.

2. **Resize cost** — how long does a live rebalance take, how many keys
   move, and how close is the moved fraction to the consistent-hashing
   ideal?

3. **Durability** — kill the gateway (no clean shutdown beyond the
   per-append flush), reload the state dir, and check that *every*
   installed delegation re-encrypts — asserted, not just reported.

TOY parameters: like E5/E9 this measures workload structure, not key size.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass

from repro.bench.report import print_table
from repro.core.proxy import ProxyKeyTable, ProxyService
from repro.service.driver import DELEGATEE_DOMAIN, build_setting
from repro.service.gateway import GrantRequest, ReEncryptionGateway, ReEncryptRequest
from repro.service.router import ShardRouter

SHARDS = 4
WORKERS = 4
REMOTE_RTT_S = 0.005  # modelled service latency of one remote shard call


@dataclass
class RemoteShardStub(ProxyService):
    """A proxy shard that charges a service round-trip per transformation."""

    latency_s: float = 0.0

    def reencrypt_with_key(self, ciphertext, key):
        if self.latency_s:
            time.sleep(self.latency_s)
        return super().reencrypt_with_key(ciphertext, key)


def _setting():
    """4 patients x 3 types x 2 delegatees: 24 delegations over 4 shards."""
    return build_setting(
        group_name="TOY",
        shard_count=SHARDS,
        n_patients=4,
        n_types=3,
        n_delegatees=2,
        ciphertexts_per_pair=1,
        seed="e10-elastic",
    )


def _installed_keys(gateway):
    keys = []
    for name in gateway.shard_names:
        keys.extend(gateway.shard_named(name).table)
    return keys


def _spread_requests(setting):
    """One request per delegation — every group is distinct, no cache hits."""
    requests = []
    for (patient, type_label), entries in sorted(setting.pool.items()):
        ciphertext, _ = entries[0]
        for delegatee in setting.delegatees:
            requests.append(
                ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=DELEGATEE_DOMAIN,
                    delegatee=delegatee,
                )
            )
    return requests


def _gateway(scheme, keys, workers, latency_s):
    def factory(name, table):
        return RemoteShardStub(
            scheme,
            name=name,
            table=table if table is not None else ProxyKeyTable(),
            latency_s=latency_s,
        )

    gateway = ReEncryptionGateway(
        scheme, shard_count=SHARDS, workers=workers, shard_factory=factory
    )
    for key in keys:
        gateway.grant(GrantRequest(tenant="bench", proxy_key=key))
    return gateway


def _timed_batch(gateway, requests):
    start = time.perf_counter()
    responses = gateway.reencrypt_batch(requests)
    return time.perf_counter() - start, responses


def test_e10_concurrent_beats_sequential_on_remote_shards():
    setting = _setting()
    keys = _installed_keys(setting.gateway)
    requests = _spread_requests(setting)
    rows = []

    # Remote-shard model: the wait dominates, concurrency overlaps it.
    sequential = _gateway(setting.scheme, keys, workers=0, latency_s=REMOTE_RTT_S)
    concurrent = _gateway(setting.scheme, keys, workers=WORKERS, latency_s=REMOTE_RTT_S)
    seq_remote, seq_out = _timed_batch(sequential, requests)
    con_remote, con_out = _timed_batch(concurrent, requests)
    assert [r.ciphertext for r in con_out] == [r.ciphertext for r in seq_out]
    sequential.close()
    concurrent.close()
    rows.append(
        [
            "remote shards (%.0fms RTT)" % (REMOTE_RTT_S * 1000),
            "%.1f" % (seq_remote * 1000),
            "%.1f" % (con_remote * 1000),
            "%.2fx" % (seq_remote / con_remote),
        ]
    )

    # Single-host CPU model: the GIL serializes pairing math; report it.
    sequential = _gateway(setting.scheme, keys, workers=0, latency_s=0.0)
    concurrent = _gateway(setting.scheme, keys, workers=WORKERS, latency_s=0.0)
    seq_cpu, _ = _timed_batch(sequential, requests)
    con_cpu, _ = _timed_batch(concurrent, requests)
    sequential.close()
    concurrent.close()
    rows.append(
        [
            "local shards (pure CPU, GIL)",
            "%.1f" % (seq_cpu * 1000),
            "%.1f" % (con_cpu * 1000),
            "%.2fx" % (seq_cpu / con_cpu),
        ]
    )

    print_table(
        "E10: %d-delegation batch, %d shards, %d workers" % (len(requests), SHARDS, WORKERS),
        ["fleet model", "sequential ms", "concurrent ms", "speedup"],
        rows,
    )

    # The acceptance anchor: on multi-delegation remote-shard workloads
    # the shard pool must genuinely overlap the service round-trips.
    assert con_remote < seq_remote * 0.9, (
        "concurrent execution (%.1fms) did not beat sequential (%.1fms)"
        % (con_remote * 1000, seq_remote * 1000)
    )


def test_e10_resize_cost_and_minimal_migration():
    setting = _setting()
    gateway = setting.gateway
    total_keys = gateway.key_count()
    route_keys = {
        (k.delegator_domain, k.delegator, k.type_label)
        for k in _installed_keys(gateway)
    }
    rows = []
    for new_count in (8, 3):
        old_count = len(gateway.shard_names)
        old_router = ShardRouter(gateway.shard_names)
        report = gateway.resize(new_count)
        new_router = ShardRouter(gateway.shard_names)
        moved_fraction = old_router.moved_fraction(new_router, route_keys)
        rows.append(
            [
                "%d -> %d" % (old_count, new_count),
                "%.2f" % report.elapsed_ms,
                str(report.keys_moved),
                "%.0f%%" % (100 * moved_fraction),
            ]
        )
        assert gateway.key_count() == total_keys  # zero lost delegations
    print_table(
        "E10: live resize (%d keys installed)" % total_keys,
        ["resize", "ms", "keys moved", "route keys moved"],
        rows,
    )


def test_e10_kill_and_reload_restores_every_delegation():
    state_dir = tempfile.mkdtemp(prefix="e10-state-")
    try:
        setting = build_setting(
            group_name="TOY",
            shard_count=SHARDS,
            n_patients=3,
            n_types=2,
            n_delegatees=2,
            ciphertexts_per_pair=1,
            seed="e10-durable",
            state_dir=state_dir,
        )
        gateway = setting.gateway
        installed = {
            ProxyKeyTable.index_of(key) for key in _installed_keys(gateway)
        }
        # "Kill": drop the gateway without close(); appends are already
        # flushed, which is exactly the durability being measured.
        del gateway

        start = time.perf_counter()
        reloaded = ReEncryptionGateway(
            setting.scheme, shard_count=SHARDS, state_dir=state_dir
        )
        reload_ms = (time.perf_counter() - start) * 1000

        recovered = {ProxyKeyTable.index_of(key) for key in _installed_keys(reloaded)}
        assert recovered == installed, "reload lost or invented delegations"

        verified = 0
        for (patient, type_label), entries in sorted(setting.pool.items()):
            ciphertext, message = entries[0]
            delegatee = setting.delegatees[0]
            response = reloaded.reencrypt(
                ReEncryptRequest(
                    tenant=patient,
                    ciphertext=ciphertext,
                    delegatee_domain=DELEGATEE_DOMAIN,
                    delegatee=delegatee,
                )
            )
            recovered_message = setting.scheme.decrypt_reencrypted(
                response.ciphertext, setting.delegatee_keys[delegatee]
            )
            assert recovered_message == message
            verified += 1
        reloaded.close()

        print_table(
            "E10: kill/reload durability (%d delegations)" % len(installed),
            ["metric", "value"],
            [
                ["delegations installed", str(len(installed))],
                ["delegations recovered", str(len(recovered))],
                ["plaintexts verified post-reload", str(verified)],
                ["reload time ms", "%.1f" % reload_ms],
            ],
        )
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
