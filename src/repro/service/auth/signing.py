"""HMAC-SHA256 request signing for the gateway wire.

The scheme is deliberately boring — an AWS-SigV4-shaped canonical
request, one shared secret per tenant, one header:

    canonical = "repro-auth/v1" NL method NL path NL sha256(body) NL
                timestamp NL nonce NL tenant
    signature = hexdigest(HMAC-SHA256(secret, canonical))
    X-Repro-Auth: v1;tenant=<t>;ts=<unix>;nonce=<hex>;sig=<hex>

The timestamp is carried *verbatim* in the header and re-signed exactly
as sent, so verifier and signer never disagree about formatting; the
verifier bounds it by a clock-skew window and remembers accepted
``(tenant, nonce)`` pairs for the same window, which together make a
captured request unreplayable once the window passes and unreplayable
immediately within it.  Nonces are only recorded *after* the signature
verifies — an attacker who cannot sign cannot poison the replay window
against the legitimate client.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import threading
import time
from collections import OrderedDict

from repro.service.auth.errors import (
    AuthRequiredError,
    BadSignatureError,
    ReplayedNonceError,
    StaleTimestampError,
    UnknownTenantError,
)

__all__ = [
    "AUTH_HEADER",
    "AUTH_VERSION",
    "canonical_request",
    "sign_request",
    "parse_auth_header",
    "RequestSigner",
    "ReplayWindow",
    "RequestVerifier",
]

AUTH_HEADER = "X-Repro-Auth"
AUTH_VERSION = "v1"

# Defaults shared by the verifier and the CLI: +/- two minutes of clock
# skew, and a replay memory that outlives the skew window with room to
# spare so a nonce can never be re-accepted while its timestamp is
# still admissible.
DEFAULT_MAX_SKEW_S = 120.0
DEFAULT_REPLAY_TTL_S = 300.0
DEFAULT_REPLAY_CAPACITY = 65536


def canonical_request(
    method: str, path: str, body: bytes, timestamp: str, nonce: str, tenant: str
) -> bytes:
    """The byte string both sides HMAC; any edit to the request changes it."""
    body_digest = hashlib.sha256(body).hexdigest()
    return "\n".join(
        ["repro-auth/" + AUTH_VERSION, method.upper(), path, body_digest, timestamp, nonce, tenant]
    ).encode("utf-8")


def sign_request(
    secret: str, method: str, path: str, body: bytes, timestamp: str, nonce: str, tenant: str
) -> str:
    digest = canonical_request(method, path, body, timestamp, nonce, tenant)
    return hmac.new(secret.encode("utf-8"), digest, hashlib.sha256).hexdigest()


def build_auth_header(tenant: str, timestamp: str, nonce: str, signature: str) -> str:
    return "%s;tenant=%s;ts=%s;nonce=%s;sig=%s" % (
        AUTH_VERSION,
        tenant,
        timestamp,
        nonce,
        signature,
    )


def parse_auth_header(value: str | None) -> dict[str, str]:
    """Split an ``X-Repro-Auth`` value into its fields.

    Raises :class:`AuthRequiredError` on a missing or structurally
    malformed header — a request that cannot even be parsed carries no
    identity to blame a better error on.
    """
    if not value:
        raise AuthRequiredError("request is not signed (missing %s header)" % AUTH_HEADER)
    parts = value.split(";")
    if parts[0] != AUTH_VERSION:
        raise AuthRequiredError("unsupported auth header version %r" % parts[0][:32])
    fields: dict[str, str] = {}
    for part in parts[1:]:
        key, sep, item = part.partition("=")
        if not sep or not key:
            raise AuthRequiredError("malformed auth header field %r" % part[:32])
        fields[key] = item
    missing = {"tenant", "ts", "nonce", "sig"} - set(fields)
    if missing:
        raise AuthRequiredError("auth header missing fields: %s" % ", ".join(sorted(missing)))
    if not fields["ts"].isdigit():
        raise AuthRequiredError("auth header timestamp is not an integer")
    return fields


class RequestSigner:
    """Client-side signer: one tenant identity, fresh nonce per request."""

    __slots__ = ("tenant", "_secret", "_clock")

    def __init__(self, tenant: str, secret: str, clock=time.time):
        self.tenant = tenant
        self._secret = secret
        self._clock = clock

    def header(self, method: str, path: str, body: bytes) -> str:
        """The ``X-Repro-Auth`` value for one request attempt.

        Every call draws a fresh nonce — a retry of the same request is
        a *new* signed request, so the server's replay window never
        mistakes a legitimate retransmit for an attack.
        """
        timestamp = str(int(self._clock()))
        nonce = secrets.token_hex(16)
        signature = sign_request(
            self._secret, method, path, body, timestamp, nonce, self.tenant
        )
        return build_auth_header(self.tenant, timestamp, nonce, signature)


class ReplayWindow:
    """Bounded memory of accepted ``(tenant, nonce)`` pairs.

    Entries expire after ``ttl_s``; when the window is full the oldest
    entry is evicted first (insertion order ~ acceptance order).  The
    capacity bound keeps a nonce-spraying client from growing server
    memory without limit — at worst it shortens its *own* effective
    replay protection, never another tenant's timestamp window.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_REPLAY_CAPACITY,
        ttl_s: float = DEFAULT_REPLAY_TTL_S,
        clock=time.monotonic,
    ):
        self.capacity = int(capacity)
        self.ttl_s = float(ttl_s)
        self._clock = clock
        self._seen: OrderedDict[tuple[str, str], float] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)

    def check_and_record(self, tenant: str, nonce: str) -> bool:
        """True if the pair is fresh (and now recorded); False on replay."""
        key = (tenant, nonce)
        now = self._clock()
        with self._lock:
            while self._seen:
                oldest_key = next(iter(self._seen))
                if self._seen[oldest_key] > now:
                    break
                del self._seen[oldest_key]
            if key in self._seen:
                return False
            while len(self._seen) >= self.capacity:
                self._seen.popitem(last=False)
            self._seen[key] = now + self.ttl_s
            return True


class RequestVerifier:
    """Server-side verification: header -> authenticated credential.

    The check order is fixed and observable through the error codes:
    parse, tenant lookup, timestamp window, signature, replay.  The
    replay check runs last so only *valid* signatures consume window
    entries, and the signature comparison is constant-time
    (:func:`hmac.compare_digest`).
    """

    def __init__(
        self,
        store,
        max_skew_s: float = DEFAULT_MAX_SKEW_S,
        clock=time.time,
        replay: ReplayWindow | None = None,
    ):
        self.store = store
        self.max_skew_s = float(max_skew_s)
        self._clock = clock
        self.replay = replay if replay is not None else ReplayWindow()

    def verify(self, method: str, path: str, body: bytes, header: str | None):
        """Authenticate one request; returns the tenant's credential."""
        fields = parse_auth_header(header)
        tenant = fields["tenant"]
        credential = self.store.lookup(tenant)
        if credential is None:
            raise UnknownTenantError("unknown tenant %r" % tenant[:64])
        age = abs(self._clock() - int(fields["ts"]))
        if age > self.max_skew_s:
            raise StaleTimestampError(
                "signed timestamp is %ds outside the %ds skew window"
                % (int(age), int(self.max_skew_s))
            )
        expected = sign_request(
            credential.secret, method, path, body, fields["ts"], fields["nonce"], tenant
        )
        if not hmac.compare_digest(expected, fields["sig"]):
            raise BadSignatureError("request signature does not verify for tenant %r" % tenant)
        if not self.replay.check_and_record(tenant, fields["nonce"]):
            raise ReplayedNonceError("nonce already used by tenant %r" % tenant)
        return credential
