"""The Ateniese--Fu--Green--Hohenberger (TISSEC'06) pairing-based PRE.

The unidirectional, collusion-safe scheme the paper's related work
describes, with its characteristic **two encryption levels**:

* **second-level** ciphertexts ``(g^(a*r), m * Z^r)`` (``Z = e(g, g)``) can
  be re-encrypted by a proxy holding ``rk_{a->b} = g^(b/a)`` into
* **first-level** ciphertexts ``(Z^(b*r), m * Z^r)`` which only the
  delegatee can open (and which cannot be re-encrypted again —
  single-hop).

First-level encryption (:meth:`encrypt_first`) exists directly, too: that
is the "two levels of encryption" cost the paper cites as the scheme's
disadvantage.  Collusion safety: proxy + delegatee learn ``g^(b/a)`` and
``b``, hence only the *weak* secret ``g^(1/a)``, never ``a`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.curve import Point
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.math.ntheory import modinv
from repro.pairing.group import PairingGroup

__all__ = [
    "AfghScheme",
    "AfghKeyPair",
    "AfghSecondLevelCiphertext",
    "AfghFirstLevelCiphertext",
]


@dataclass(frozen=True)
class AfghKeyPair:
    """``sk = a``, ``pk = g^a``."""

    secret: int
    public: Point


@dataclass(frozen=True)
class AfghSecondLevelCiphertext:
    """Re-encryptable ciphertext ``(g^(a*r), m * Z^r)`` for the delegator."""

    owner: str
    c1: Point
    c2: Fp2Element


@dataclass(frozen=True)
class AfghFirstLevelCiphertext:
    """Non-re-encryptable ciphertext ``(Z^(x*r), m * Z^r)``."""

    owner: str
    c1: Fp2Element
    c2: Fp2Element


class AfghScheme:
    """AFGH unidirectional single-hop PRE over a symmetric pairing."""

    def __init__(self, group: PairingGroup):
        self.group = group

    def keygen(self, rng: RandomSource | None = None) -> AfghKeyPair:
        rng = rng or system_random()
        secret = self.group.random_scalar(rng)
        return AfghKeyPair(secret=secret, public=self.group.g1_mul(self.group.generator, secret))

    # --------------------------------------------------------- second level

    def encrypt_second(
        self, owner: str, public: Point, message: Fp2Element, rng: RandomSource | None = None
    ) -> AfghSecondLevelCiphertext:
        """``(pk^r, m * Z^r)`` — decryptable by the owner, re-encryptable."""
        rng = rng or system_random()
        r = self.group.random_scalar(rng)
        c1 = self.group.g1_mul(public, r)
        mask = self.group.gt_exp(self.group.gt_generator(), r)
        return AfghSecondLevelCiphertext(owner=owner, c1=c1, c2=self.group.gt_mul(message, mask))

    def decrypt_second(self, ciphertext: AfghSecondLevelCiphertext, secret: int) -> Fp2Element:
        """``m = c2 / e(c1, g)^(1/a)``."""
        a_inv = modinv(secret, self.group.order)
        mask = self.group.gt_exp(self.group.pair(ciphertext.c1, self.group.generator), a_inv)
        return self.group.gt_div(ciphertext.c2, mask)

    # ---------------------------------------------------------- first level

    def encrypt_first(
        self, owner: str, public: Point, message: Fp2Element, rng: RandomSource | None = None
    ) -> AfghFirstLevelCiphertext:
        """``(e(pk, g)^r, m * Z^r)`` — the delegator's *second* key usage."""
        rng = rng or system_random()
        r = self.group.random_scalar(rng)
        c1 = self.group.gt_exp(self.group.pair(public, self.group.generator), r)
        mask = self.group.gt_exp(self.group.gt_generator(), r)
        return AfghFirstLevelCiphertext(owner=owner, c1=c1, c2=self.group.gt_mul(message, mask))

    def decrypt_first(self, ciphertext: AfghFirstLevelCiphertext, secret: int) -> Fp2Element:
        """``m = c2 / c1^(1/x)``."""
        x_inv = modinv(secret, self.group.order)
        return self.group.gt_div(ciphertext.c2, self.group.gt_exp(ciphertext.c1, x_inv))

    # ------------------------------------------------------- re-encryption

    def rekey(self, delegator_secret: int, delegatee_public: Point) -> Point:
        """``rk_{a->b} = (g^b)^(1/a)``.  Non-interactive and unidirectional."""
        return self.group.g1_mul(delegatee_public, modinv(delegator_secret, self.group.order))

    def reencrypt(
        self, ciphertext: AfghSecondLevelCiphertext, rk: Point, new_owner: str
    ) -> AfghFirstLevelCiphertext:
        """``e(g^(a*r), g^(b/a)) = Z^(b*r)``: second level becomes first level."""
        c1 = self.group.pair(ciphertext.c1, rk)
        return AfghFirstLevelCiphertext(owner=new_owner, c1=c1, c2=ciphertext.c2)

    @staticmethod
    def collusion_view(rk: Point, delegatee_secret: int) -> tuple[Point, int]:
        """All a colluding proxy + delegatee hold: ``g^(b/a)`` and ``b``.

        From these one derives only the weak secret ``g^(1/a)``; the
        delegator's ``a`` stays safe (discrete log).  Returned as a pair so
        property checks can verify no stronger value is derivable.
        """
        return rk, delegatee_secret
