"""Tests for the attack-game challengers and constraint enforcement."""

import pytest

from repro.math.drbg import HmacDrbg
from repro.security.games import (
    IllegalQueryError,
    IndIdCpaGame,
    IndIdDrCpaGame,
    OneWaynessGame,
    estimate_advantage,
)


class TestIndIdCpaGame:
    def test_mechanics(self, group, rng):
        game = IndIdCpaGame(group, rng)
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        game.challenge(m0, m1, "target")
        result = game.finish(0)
        assert result.won == (result.challenge_bit == 0)

    def test_extract_oracle_works(self, group, rng):
        game = IndIdCpaGame(group, rng)
        key = game.extract("someone")
        assert key.identity == "someone"

    def test_extract_then_challenge_same_id_rejected(self, group, rng):
        game = IndIdCpaGame(group, rng)
        game.extract("target")
        with pytest.raises(IllegalQueryError):
            game.challenge(group.random_gt(rng), group.random_gt(rng), "target")

    def test_challenge_then_extract_rejected(self, group, rng):
        game = IndIdCpaGame(group, rng)
        game.challenge(group.random_gt(rng), group.random_gt(rng), "target")
        with pytest.raises(IllegalQueryError):
            game.extract("target")

    def test_double_challenge_rejected(self, group, rng):
        game = IndIdCpaGame(group, rng)
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        game.challenge(m0, m1, "target")
        with pytest.raises(IllegalQueryError):
            game.challenge(m0, m1, "other")

    def test_finish_before_challenge_rejected(self, group, rng):
        with pytest.raises(IllegalQueryError):
            IndIdCpaGame(group, rng).finish(0)

    def test_correct_key_wins_with_decryption(self, group, rng):
        """Sanity: an adversary holding the (forbidden) key would win.

        We simulate by decrypting with a key extracted *before* the rules
        are applied — using a different game instance's KGC is impossible,
        so instead we verify the challenge ciphertext is well-formed by
        replaying the challenger's own scheme.
        """
        game = IndIdCpaGame(group, rng)
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        ciphertext = game.challenge(m0, m1, "target")
        assert ciphertext.identity == "target"
        assert ciphertext.c2 is not None


class TestOneWaynessGame:
    def test_mechanics(self, group, rng):
        game = OneWaynessGame(group, rng)
        game.challenge("target")
        assert game.finish(group.random_gt(rng)) in (True, False)

    def test_wrong_guess_loses(self, group, rng):
        game = OneWaynessGame(group, rng)
        game.challenge("target")
        # A random guess hits the hidden message with probability ~1/q.
        assert not game.finish(group.gt_identity())

    def test_extract_constraint(self, group, rng):
        game = OneWaynessGame(group, rng)
        game.extract("other")
        with pytest.raises(IllegalQueryError):
            game.challenge("other")

    def test_finish_before_challenge(self, group, rng):
        with pytest.raises(IllegalQueryError):
            OneWaynessGame(group, rng).finish(group.gt_identity())


class TestIndIdDrCpaGame:
    def test_full_game_mechanics(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        game.extract1("other1")
        game.extract2("other2")
        game.pextract("alice", "bob", "t1")
        game.challenge(m0, m1, "t-star", "alice")
        result = game.finish(1)
        assert result.won == (result.challenge_bit == 1)

    def test_constraint_a_extract1_before(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        game.extract1("alice")
        with pytest.raises(IllegalQueryError):
            game.challenge(group.random_gt(rng), group.random_gt(rng), "t", "alice")

    def test_constraint_a_extract1_after(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        game.challenge(group.random_gt(rng), group.random_gt(rng), "t", "alice")
        with pytest.raises(IllegalQueryError):
            game.extract1("alice")

    def test_constraint_b_pextract_then_extract2(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        game.pextract("alice", "bob", "t-star")
        game.challenge(group.random_gt(rng), group.random_gt(rng), "t-star", "alice")
        with pytest.raises(IllegalQueryError):
            game.extract2("bob")

    def test_constraint_b_extract2_then_pextract(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        game.extract2("bob")
        game.challenge(group.random_gt(rng), group.random_gt(rng), "t-star", "alice")
        with pytest.raises(IllegalQueryError):
            game.pextract("alice", "bob", "t-star")

    def test_constraint_b_checked_at_challenge(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        game.pextract("alice", "bob", "t-star")
        game.extract2("bob")  # legal now: no challenge yet
        with pytest.raises(IllegalQueryError):
            game.challenge(group.random_gt(rng), group.random_gt(rng), "t-star", "alice")

    def test_constraint_b_different_type_allowed(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        game.pextract("alice", "bob", "other-type")
        game.challenge(group.random_gt(rng), group.random_gt(rng), "t-star", "alice")
        game.extract2("bob")  # fine: the proxy key is for a different type

    def test_constraint_c_both_orders(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        game.preenc_dagger(group.random_gt(rng), "t", "alice", "bob")
        with pytest.raises(IllegalQueryError):
            game.pextract("alice", "bob", "t")

        game2 = IndIdDrCpaGame(group, rng)
        game2.pextract("alice", "bob", "t")
        with pytest.raises(IllegalQueryError):
            game2.preenc_dagger(group.random_gt(rng), "t", "alice", "bob")

    def test_preenc_dagger_output_correct(self, group, rng):
        """The oracle's output decrypts to the submitted plaintext."""
        game = IndIdDrCpaGame(group, rng)
        message = group.random_gt(rng)
        transformed = game.preenc_dagger(message, "t", "alice", "bob")
        bob = game.extract2("bob")
        assert game.scheme.decrypt_reencrypted(transformed, bob) == message

    def test_double_challenge_rejected(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        game.challenge(m0, m1, "t", "alice")
        with pytest.raises(IllegalQueryError):
            game.challenge(m0, m1, "t", "alice")

    def test_params_exposed(self, group, rng):
        game = IndIdDrCpaGame(group, rng)
        assert game.params1.domain == "KGC1"
        assert game.params2.domain == "KGC2"


class TestEstimateAdvantage:
    def test_fair_coin_advantage_small(self):
        advantage = estimate_advantage(lambda rng: rng.randbelow(2) == 0, trials=400)
        assert advantage < 0.1

    def test_always_win_advantage_half(self):
        assert estimate_advantage(lambda rng: True, trials=50) == 0.5

    def test_reproducible(self):
        run = lambda rng: rng.randbelow(2) == 0
        assert estimate_advantage(run, 100, seed="s") == estimate_advantage(run, 100, seed="s")

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            estimate_advantage(lambda rng: True, trials=0)
