"""E3 — "one key pair suffices": scaling in #types and #delegatees.

Quantifies Section 1.1's argument against the naive alternative.  For a
growing number of message types we compare:

* **this paper** — the delegator keeps ONE private key; each new type
  costs one local ``Pextract`` (no KGC round-trip);
* **multi-keypair strawman** — one KGC-issued key *per type* (the
  delegator's secure storage grows linearly and the KGC must answer one
  Extract query per type), delegated with Green--Ateniese.

Expected shape: per-delegation time is in the same ballpark (both are one
blinded-key computation + one IBE encryption), but the strawman's key
storage and KGC load grow linearly with #types while the paper's stay
constant at 1.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.multi_keypair import MultiKeypairDelegation
from repro.bench.report import print_table
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup

TYPE_COUNTS = (1, 4, 16, 64)
DELEGATEE_COUNTS = (1, 8, 32)


def _fresh_setting(seed: str):
    group = PairingGroup.shared("TOY")  # scaling study: counts matter, not ms
    rng = HmacDrbg(seed)
    registry = KgcRegistry(group, rng)
    kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
    return group, rng, kgc1, kgc2


def test_e3_type_scaling_report(benchmark):
    rows = []
    for n_types in TYPE_COUNTS:
        types = ["type-%02d" % i for i in range(n_types)]

        # --- this paper: one key, one Pextract per type -------------------
        group, rng, kgc1, kgc2 = _fresh_setting("e3-ours-%d" % n_types)
        scheme = TypeAndIdentityPre(group)
        alice = kgc1.extract("alice")
        start = time.perf_counter()
        for type_label in types:
            scheme.pextract(alice, "bob", type_label, kgc2.params, rng)
        ours_ms = (time.perf_counter() - start) * 1000
        ours_keys = 1
        ours_extracts = 1  # alice's single Extract at enrolment

        # --- strawman: one keypair per type --------------------------------
        group, rng, kgc1, kgc2 = _fresh_setting("e3-straw-%d" % n_types)
        strawman = MultiKeypairDelegation(group=group, kgc=kgc1, base_identity="alice")
        start = time.perf_counter()
        for type_label in types:
            strawman.delegate(type_label, "bob", kgc2.params, rng)
        straw_ms = (time.perf_counter() - start) * 1000
        rows.append(
            [
                str(n_types),
                "%d / %d" % (ours_keys, strawman.key_count()),
                "%d / %d" % (ours_extracts, len(kgc1.issued_identities())),
                "%.1f / %.1f" % (ours_ms, straw_ms),
            ]
        )
    print_table(
        "E3: this paper vs multi-keypair strawman (ours / strawman)",
        ["#types", "delegator keys", "KGC extracts", "delegation ms (total)"],
        rows,
    )
    # Benchmark anchor: a single Pextract at the largest sweep point.
    group, rng, kgc1, kgc2 = _fresh_setting("e3-anchor")
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    benchmark.pedantic(
        lambda: scheme.pextract(alice, "bob", "anchor-type", kgc2.params, rng),
        rounds=5,
        iterations=1,
    )


def test_e3_delegatee_scaling_report(benchmark):
    """Delegating one type to N delegatees: linear in N for both, 1 key for us."""
    rows = []
    for n_delegatees in DELEGATEE_COUNTS:
        group, rng, kgc1, kgc2 = _fresh_setting("e3-fan-%d" % n_delegatees)
        scheme = TypeAndIdentityPre(group)
        alice = kgc1.extract("alice")
        start = time.perf_counter()
        keys = [
            scheme.pextract(alice, "delegatee-%02d" % i, "labs", kgc2.params, rng)
            for i in range(n_delegatees)
        ]
        elapsed_ms = (time.perf_counter() - start) * 1000
        proxy_key_bytes = n_delegatees * scheme.proxy_key_size()
        rows.append(
            [str(n_delegatees), "1", "%.1f" % elapsed_ms, str(proxy_key_bytes)]
        )
        assert len({k.rk_point for k in keys}) == n_delegatees  # all distinct
    print_table(
        "E3: fan-out to N delegatees (one type)",
        ["#delegatees", "delegator keys", "Pextract ms (total)", "proxy-key bytes"],
        rows,
    )
    group, rng, kgc1, kgc2 = _fresh_setting("e3-fan-anchor")
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    benchmark.pedantic(
        lambda: scheme.pextract(alice, "bob", "labs", kgc2.params, rng),
        rounds=5,
        iterations=1,
    )


@pytest.mark.parametrize("n_types", [4, 16])
def test_e3_pextract_independent_of_type_count(benchmark, n_types):
    """Pextract cost must not grow with how many types already exist."""
    group, rng, kgc1, kgc2 = _fresh_setting("e3-flat-%d" % n_types)
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    for i in range(n_types):  # pre-existing delegations
        scheme.pextract(alice, "bob", "pre-%d" % i, kgc2.params, rng)
    benchmark.group = "E3 pextract flatness"
    benchmark.pedantic(
        lambda: scheme.pextract(alice, "bob", "fresh", kgc2.params, rng),
        rounds=8,
        iterations=1,
    )
