"""HKDF-SHA256 (RFC 5869) for deriving DEM keys from GT elements."""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf"]

_HASH_LEN = 32


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract a pseudorandom key from input keying material."""
    return hmac.new(salt or b"\x00" * _HASH_LEN, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand a pseudorandom key to ``length`` output bytes."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF output too long")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac.new(prk, block + info + bytes([counter]), hashlib.sha256).digest()
        output += block
        counter += 1
    return output[:length]


def hkdf(ikm: bytes, info: bytes, length: int, salt: bytes = b"") -> bytes:
    """The composed extract-then-expand HKDF."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
