"""Re-record the checked-in BENCH_*.json snapshots.

Benchmarks write their numeric results through
``repro.bench.report.record_bench_snapshot``, which refuses to overwrite
an existing snapshot unless ``REPRO_RECORD_BENCH`` is set — ordinary test
runs must never churn checked-in numbers.  This helper is the deliberate
path: it exports the flag, runs the selected benchmark files under
pytest, and reports which snapshots changed.

Usage:
    python tools/record_bench.py                 # every benchmarks/bench_*.py
    python tools/record_bench.py e14 e9          # just those experiments
"""

import os
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, "src")

from repro.bench.report import RECORD_ENV

REPO_ROOT = Path(__file__).resolve().parents[1]


def select_benches(names: list[str]) -> list[Path]:
    bench_dir = REPO_ROOT / "benchmarks"
    all_benches = sorted(bench_dir.glob("bench_*.py"))
    if not names:
        return all_benches
    selected = []
    for name in names:
        token = name.lower()
        matches = [path for path in all_benches if token in path.stem.lower()]
        if not matches:
            raise SystemExit(
                "no benchmark matches %r (have: %s)"
                % (name, ", ".join(path.stem for path in all_benches))
            )
        selected.extend(matches)
    return sorted(set(selected))


def snapshot_states() -> dict[Path, float]:
    return {
        path: path.stat().st_mtime for path in sorted(REPO_ROOT.glob("BENCH_*.json"))
    }


def main(argv: list[str]) -> int:
    benches = select_benches(argv)
    before = snapshot_states()

    env = dict(os.environ)
    env[RECORD_ENV] = "1"
    env["PYTHONPATH"] = (
        "src" + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "src"
    )
    command = [sys.executable, "-m", "pytest", "-q"] + [str(b) for b in benches]
    print("running:", " ".join(command))
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)

    after = snapshot_states()
    written = [
        path
        for path, mtime in after.items()
        if path not in before or mtime != before[path]
    ]
    if written:
        print("recorded:")
        for path in written:
            print("  %s" % path.relative_to(REPO_ROOT))
    else:
        print("no snapshots written")
    return result.returncode


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
