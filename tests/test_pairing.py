"""Bilinearity and edge-case tests for the reduced Tate pairing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.params import get_params
from repro.math.drbg import HmacDrbg
from repro.pairing.tate import miller_loop, tate_pairing

PARAMS = get_params("TOY")
G = PARAMS.generator
Q = PARAMS.q

scalars = st.integers(min_value=1, max_value=Q - 1)


class TestBilinearity:
    @given(scalars, scalars)
    def test_bilinear_in_both_arguments(self, a, b):
        lhs = tate_pairing(PARAMS, G * a, G * b)
        rhs = tate_pairing(PARAMS, G, G) ** (a * b % Q)
        assert lhs == rhs

    @given(scalars)
    def test_left_linearity(self, a):
        assert tate_pairing(PARAMS, G * a, G) == tate_pairing(PARAMS, G, G) ** a

    @given(scalars)
    def test_right_linearity(self, a):
        assert tate_pairing(PARAMS, G, G * a) == tate_pairing(PARAMS, G, G) ** a

    def test_non_degenerate(self):
        assert not tate_pairing(PARAMS, G, G).is_one()

    def test_symmetric(self):
        p1, p2 = G * 3, G * 11
        assert tate_pairing(PARAMS, p1, p2) == tate_pairing(PARAMS, p2, p1)

    def test_inverse_argument(self):
        e = tate_pairing(PARAMS, G, G)
        assert tate_pairing(PARAMS, -G, G) == e.inverse()

    def test_product_rule(self):
        # e(P1 + P2, Q) = e(P1, Q) * e(P2, Q)
        p1, p2, q_point = G * 5, G * 9, G * 13
        combined = tate_pairing(PARAMS, p1 + p2, q_point)
        split = tate_pairing(PARAMS, p1, q_point) * tate_pairing(PARAMS, p2, q_point)
        assert combined == split


class TestOutputStructure:
    def test_output_in_gt(self):
        value = tate_pairing(PARAMS, G * 7, G * 3)
        assert PARAMS.is_in_gt(value)

    def test_order_divides_q(self):
        value = tate_pairing(PARAMS, G, G)
        assert (value**Q).is_one()

    def test_gt_generator_consistency(self):
        # e(G, G) generates GT: its powers cover at least a few distinct values.
        base = tate_pairing(PARAMS, G, G)
        powers = {base**i for i in range(1, 6)}
        assert len(powers) == 5


class TestEdgeCases:
    def test_infinity_left(self):
        assert tate_pairing(PARAMS, PARAMS.curve.infinity(), G).is_one()

    def test_infinity_right(self):
        assert tate_pairing(PARAMS, G, PARAMS.curve.infinity()).is_one()

    def test_both_infinity(self):
        infinity = PARAMS.curve.infinity()
        assert tate_pairing(PARAMS, infinity, infinity).is_one()

    def test_same_point(self):
        assert not tate_pairing(PARAMS, G, G).is_one()

    def test_wrong_curve_rejected(self):
        other = get_params("SS256")
        with pytest.raises(ValueError):
            tate_pairing(PARAMS, other.generator, G)

    def test_non_order_q_point_rejected(self):
        # A point of cofactor order breaks the Miller loop invariant.
        rng = HmacDrbg("bad-order")
        while True:
            x = PARAMS.base_field.random(rng)
            candidate = PARAMS.curve.lift_x(x)
            if candidate is not None and not (candidate * PARAMS.q).is_infinity():
                with pytest.raises(ArithmeticError):
                    miller_loop(
                        PARAMS, candidate, int(G.x), int(G.y)
                    )
                return


class TestAgainstLargerGroup:
    def test_ss256_bilinearity_single_case(self):
        params = get_params("SS256")
        g = params.generator
        a, b = 1234567, 7654321
        lhs = tate_pairing(params, g * a, g * b)
        rhs = tate_pairing(params, g, g) ** (a * b % params.q)
        assert lhs == rhs
