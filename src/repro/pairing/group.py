"""A charm-crypto-style facade over the pairing substrate.

:class:`PairingGroup` bundles a parameter set with the operations every
pairing-based scheme needs — random sampling, hashing into G1 / Z_q,
scalar multiplication, GT exponentiation and the pairing itself — and
records each expensive operation with :mod:`repro.bench.counters` so that
benchmarks can report exact operation counts per scheme algorithm.

All schemes in :mod:`repro.ibe`, :mod:`repro.core` and
:mod:`repro.baselines` are written against this facade, never against the
raw curve classes.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.bench.counters import record_operation
from repro.ec.curve import Point
from repro.ec.params import get_params
from repro.ec.scalarmult import FixedBaseTable, wnaf_mul
from repro.ec.supersingular import SupersingularCurve
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.math.ntheory import bytes_to_int
from repro.pairing.miller import MillerPrecomp
from repro.pairing.tate import multi_tate_pairing, tate_pairing, tate_pairing_batch

__all__ = ["PairingGroup"]

# Bounds for the per-group Miller-precomputation cache: enough for every
# long-lived point a deployment pairs against (generator, KGC/party public
# keys, re-encryption-key points) without letting one-shot ciphertext
# points grow it without limit.
_PRECOMP_CACHE_SIZE = 128
_PRECOMP_SEEN_LIMIT = 4096


class PairingGroup:
    """A symmetric prime-order pairing group ``e: G1 x G1 -> GT``."""

    _shared: dict[str, "PairingGroup"] = {}

    def __init__(self, params: SupersingularCurve | str):
        if isinstance(params, str):
            params = get_params(params)
        self.params = params
        self.order = params.q
        self.generator = params.generator
        # Miller-loop precomputations for repeatedly-paired points, the
        # pairing analogue of the fixed-base scalar table: keyed by affine
        # coordinates, LRU-bounded, promoted on the second sighting so
        # one-shot ciphertext points never pollute the cache.
        self._pair_precomps: OrderedDict[tuple[int, int], MillerPrecomp] = OrderedDict()
        self._pair_seen: dict[tuple[int, int], int] = {}

    @classmethod
    def shared(cls, name: str) -> "PairingGroup":
        """A process-wide cached instance (reuses the lazy GT generator)."""
        key = name.upper()
        if key not in cls._shared:
            cls._shared[key] = cls(key)
        return cls._shared[key]

    @classmethod
    def for_scheme(cls, base_name: str, scheme_id: str) -> "PairingGroup":
        """A per-scheme group: the size of ``base_name``, a distinct modulus.

        A multi-scheme server must not run every hosted scheme on one
        pairing group — shared group parameters couple schemes that the
        paper treats as independent deployments, and a cross-scheme
        element would deserialize cleanly instead of failing.  The
        derived parameters are *deterministic* (an HMAC-DRBG seeded from
        the base name and scheme id drives the prime search), so every
        process — server or client — independently computes the same
        group, and they are cached process-wide like :meth:`shared`.

        Named ``"<BASE>:<scheme-id>"`` so wire negotiation (which
        compares group names) distinguishes them from the shared base.
        """
        from repro.ec.params import generate_parameters
        from repro.math.drbg import HmacDrbg

        key = "%s:%s" % (base_name.upper(), scheme_id)
        if key not in cls._shared:
            base = get_params(base_name)
            rng = HmacDrbg("per-scheme-group|%s|%s" % (base_name.upper(), scheme_id))
            params = generate_parameters(
                base.q.bit_length(), base.p.bit_length(), rng=rng, name=key
            )
            cls._shared[key] = cls(params)
        return cls._shared[key]

    # ------------------------------------------------------------- sampling

    def random_scalar(self, rng: RandomSource | None = None) -> int:
        """Uniform element of Z_q^*."""
        rng = rng or system_random()
        return rng.rand_nonzero_below(self.order)

    def random_g1(self, rng: RandomSource | None = None) -> Point:
        """Uniform non-identity element of G1."""
        rng = rng or system_random()
        return self.g1_mul(self.generator, self.random_scalar(rng))

    def random_gt(self, rng: RandomSource | None = None) -> Fp2Element:
        """Uniform non-identity element of GT."""
        rng = rng or system_random()
        return self.gt_exp(self.gt_generator(), self.random_scalar(rng))

    # -------------------------------------------------------------- hashing

    def hash_to_g1(self, data: bytes | str) -> Point:
        """The random oracle H1: {0,1}* -> G1."""
        record_operation("hash_to_g1")
        return self.params.hash_to_group(data)

    def hash_to_scalar(self, data: bytes | str) -> int:
        """A random oracle {0,1}* -> Z_q^* (used as H2 in the paper).

        The digest is expanded 16 bytes past the modulus size so the
        modular reduction bias is negligible.
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        need = (self.order.bit_length() + 7) // 8 + 16
        digest = b""
        block = 0
        while len(digest) < need:
            digest += hashlib.sha256(b"repro-h2z" + block.to_bytes(2, "big") + data).digest()
            block += 1
        value = bytes_to_int(digest[:need]) % (self.order - 1)
        return value + 1

    def hash_gt_to_bytes(self, element: Fp2Element, length: int = 32) -> bytes:
        """A random oracle GT -> {0,1}^(8*length) (the BF H2 for XOR mode)."""
        seed = b"repro-gt" + self.serialize_gt(element)
        out = b""
        block = 0
        while len(out) < length:
            out += hashlib.sha256(seed + block.to_bytes(2, "big")).digest()
            block += 1
        return out[:length]

    # ----------------------------------------------------- group operations

    def g1_mul(self, point: Point, scalar: int) -> Point:
        """Scalar multiplication in G1 (recorded).

        Uses a precomputed fixed-base table for the group generator and
        wNAF for arbitrary points; both agree with the schoolbook ladder
        (property-tested in ``tests/test_scalarmult.py``).
        """
        record_operation("g1_mul")
        scalar %= self.order
        if point == self.generator:
            return self._generator_table().mul(scalar)
        return wnaf_mul(point, scalar)

    def _generator_table(self) -> FixedBaseTable:
        if not hasattr(self, "_gen_table"):
            self._gen_table = FixedBaseTable(self.generator, self.order.bit_length())
        return self._gen_table

    def g1_add(self, left: Point, right: Point) -> Point:
        return left + right

    def g1_neg(self, point: Point) -> Point:
        return -point

    def g1_identity(self) -> Point:
        return self.params.curve.infinity()

    def gt_generator(self) -> Fp2Element:
        """A fixed generator of GT: e(g, g)."""
        if not hasattr(self, "_gt_generator"):
            self._gt_generator = self.pair(self.generator, self.generator)
        return self._gt_generator

    def gt_exp(self, element: Fp2Element, exponent: int) -> Fp2Element:
        """Exponentiation in GT (recorded)."""
        record_operation("gt_exp")
        return element ** (exponent % self.order)

    def gt_mul(self, left: Fp2Element, right: Fp2Element) -> Fp2Element:
        return left * right

    def gt_div(self, left: Fp2Element, right: Fp2Element) -> Fp2Element:
        return left * right.inverse()

    def gt_inverse(self, element: Fp2Element) -> Fp2Element:
        return element.inverse()

    def gt_identity(self) -> Fp2Element:
        return self.params.gt_identity()

    # ------------------------------------------------ pairing + precomp cache

    @staticmethod
    def _point_key(point: Point) -> tuple[int, int]:
        return (int(point.x), int(point.y))

    def _cached_precomp(self, key: tuple[int, int]) -> MillerPrecomp | None:
        pre = self._pair_precomps.get(key)
        if pre is not None:
            self._pair_precomps.move_to_end(key)
        return pre

    def _store_precomp(self, key: tuple[int, int], pre: MillerPrecomp) -> None:
        self._pair_precomps[key] = pre
        self._pair_precomps.move_to_end(key)
        while len(self._pair_precomps) > _PRECOMP_CACHE_SIZE:
            self._pair_precomps.popitem(last=False)

    def _note_seen(self, key: tuple[int, int]) -> bool:
        """Count a cache miss; True once the point deserves a cached precomp."""
        if len(self._pair_seen) >= _PRECOMP_SEEN_LIMIT:
            self._pair_seen.clear()
        count = self._pair_seen.get(key, 0) + 1
        self._pair_seen[key] = count
        return count >= 2

    def precompute_pairing(self, point: Point) -> MillerPrecomp:
        """Build (or fetch) and cache the Miller precomputation for ``point``.

        Schemes call this eagerly for long-lived points (public keys,
        re-encryption keys); ordinary :meth:`pair` calls promote any point
        seen twice automatically.
        """
        key = self._point_key(point)
        pre = self._cached_precomp(key)
        if pre is None:
            pre = MillerPrecomp(self.params, point)
            self._store_precomp(key, pre)
        return pre

    def pair(self, left: Point, right: Point) -> Fp2Element:
        """The symmetric pairing e: G1 x G1 -> GT (recorded inside).

        Either argument may hit the precomputation cache — the pairing is
        symmetric, so a cached right argument evaluates with the operands
        swapped.  A point paired for the second time is promoted into the
        cache; the first sighting stays ephemeral.
        """
        if left.is_infinity() or right.is_infinity():
            return tate_pairing(self.params, left, right)
        key_l = self._point_key(left)
        pre = self._cached_precomp(key_l)
        if pre is not None:
            return tate_pairing(self.params, left, right, precomp=pre)
        key_r = self._point_key(right)
        pre = self._cached_precomp(key_r)
        if pre is not None:
            return tate_pairing(self.params, right, left, precomp=pre)
        if self._note_seen(key_r):
            return tate_pairing(self.params, right, left, precomp=self.precompute_pairing(right))
        if self._note_seen(key_l):
            return tate_pairing(self.params, left, right, precomp=self.precompute_pairing(left))
        return tate_pairing(self.params, left, right)

    def pair_batch(self, fixed: Point, points: list[Point]) -> list[Fp2Element]:
        """``[e(fixed, Q) for Q in points]`` sharing one Miller precomputation.

        The workhorse behind batched re-encryption: every ciphertext in a
        delegation group pairs against the same re-encryption-key point, so
        the chain walk is paid once (and cached for the next batch) and the
        final exponentiations share one batch inversion.
        """
        if not points:
            return []
        if fixed.is_infinity():
            return tate_pairing_batch(self.params, fixed, points)
        return tate_pairing_batch(
            self.params, fixed, points, precomp=self.precompute_pairing(fixed)
        )

    def multi_pair(self, pairs: list[tuple[Point, Point]]) -> Fp2Element:
        """``prod_i e(P_i, Q_i)`` sharing one final exponentiation.

        Cached precomputations are used where available (on either side of
        a pair, via symmetry) but never built speculatively here.
        """
        arranged: list[tuple[Point, Point]] = []
        precomps: list[MillerPrecomp | None] = []
        for left, right in pairs:
            if not left.is_infinity() and not right.is_infinity():
                pre = self._cached_precomp(self._point_key(left))
                if pre is None:
                    swapped = self._cached_precomp(self._point_key(right))
                    if swapped is not None:
                        left, right, pre = right, left, swapped
            else:
                pre = None
            arranged.append((left, right))
            precomps.append(pre)
        return multi_tate_pairing(self.params, arranged, precomps=precomps)

    # -------------------------------------------------------- serialization

    def serialize_g1(self, point: Point) -> bytes:
        """Compressed encoding: x-coordinate plus a parity byte."""
        size = (self.params.p.bit_length() + 7) // 8
        if point.is_infinity():
            return b"\x02" + b"\x00" * size
        parity = int(point.y) & 1
        return bytes([parity]) + int(point.x).to_bytes(size, "big")

    def deserialize_g1(self, data: bytes) -> Point:
        size = (self.params.p.bit_length() + 7) // 8
        if len(data) != size + 1:
            raise ValueError("bad G1 encoding length")
        if data[0] == 2:
            return self.g1_identity()
        if data[0] not in (0, 1):
            raise ValueError("bad G1 encoding tag")
        point = self.params.curve.lift_x(bytes_to_int(data[1:]), y_parity=data[0])
        if point is None:
            raise ValueError("x-coordinate is not on the curve")
        return point

    def serialize_gt(self, element: Fp2Element) -> bytes:
        size = (self.params.p.bit_length() + 7) // 8
        # int() conversions keep this valid when the backend stores mpz.
        return int(element.a).to_bytes(size, "big") + int(element.b).to_bytes(size, "big")

    def deserialize_gt(self, data: bytes) -> Fp2Element:
        size = (self.params.p.bit_length() + 7) // 8
        if len(data) != 2 * size:
            raise ValueError("bad GT encoding length")
        return Fp2Element(
            self.params.ext_field, bytes_to_int(data[:size]), bytes_to_int(data[size:])
        )

    def g1_element_size(self) -> int:
        """Size in bytes of a serialized G1 element."""
        return (self.params.p.bit_length() + 7) // 8 + 1

    def gt_element_size(self) -> int:
        """Size in bytes of a serialized GT element."""
        return 2 * ((self.params.p.bit_length() + 7) // 8)

    def scalar_size(self) -> int:
        """Size in bytes of a serialized Z_q scalar."""
        return (self.order.bit_length() + 7) // 8

    def __repr__(self) -> str:
        return "PairingGroup(%s)" % self.params.name
