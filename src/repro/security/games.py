"""Executable security games for the IBE and PRE schemes.

The paper's security argument (Sections 3.2 and 4.2) is formulated as
attack games.  This module implements the **challengers** of those games —
oracle bookkeeping, constraint enforcement, challenge generation — so that
adversary *strategies* (:mod:`repro.security.adversaries`) can be run
against them and their empirical advantage measured (experiment E6).

Games:

* :class:`IndIdCpaGame` — IND-ID-CPA for Boneh--Franklin (Definition 5).
* :class:`OneWaynessGame` — one-wayness for Boneh--Franklin (Definition 6).
* :class:`IndIdDrCpaGame` — IND-ID-DR-CPA for the paper's scheme
  (Section 4.2), with all three Phase-1/Phase-2 constraints enforced:

  (a) ``id*`` is never the input of an ``Extract1`` query;
  (b) if ``(id*, id', t*)`` was ``Pextract``-ed then ``id'`` is never
      ``Extract2``-ed;
  (c) a ``Preenc+`` query for ``(m, t, id, id')`` excludes a ``Pextract``
      query for ``(id, id', t)`` (and vice versa).

Violations raise :class:`IllegalQueryError` — an adversary that *needs* an
illegal query to win has, by definition, stepped outside the threat model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.ibe.keys import IbeCiphertext, IbeParams, IbePrivateKey
from repro.math.drbg import HmacDrbg, RandomSource
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = [
    "IllegalQueryError",
    "GameResult",
    "IndIdCpaGame",
    "OneWaynessGame",
    "IndIdDrCpaGame",
    "estimate_advantage",
]


class IllegalQueryError(RuntimeError):
    """The adversary issued a query the game's constraints forbid."""


@dataclass(frozen=True)
class GameResult:
    """Outcome of one game run."""

    won: bool
    challenge_bit: int
    guess: int


class IndIdCpaGame:
    """IND-ID-CPA challenger for one Boneh--Franklin domain."""

    def __init__(self, group: PairingGroup, rng: RandomSource):
        self._rng = rng
        registry = KgcRegistry(group, rng)
        self._kgc = registry.create("KGC")
        self._group = group
        self._extracted: set[str] = set()
        self._challenged: str | None = None
        self._bit: int | None = None

    @property
    def params(self) -> IbeParams:
        return self._kgc.params

    def extract(self, identity: str) -> IbePrivateKey:
        """Extract oracle; forbidden on the challenge identity."""
        if identity == self._challenged:
            raise IllegalQueryError("Extract on the challenge identity is forbidden")
        self._extracted.add(identity)
        return self._kgc.extract(identity)

    def challenge(self, m0: Fp2Element, m1: Fp2Element, identity: str) -> IbeCiphertext:
        if self._challenged is not None:
            raise IllegalQueryError("only one challenge per game")
        if identity in self._extracted:
            raise IllegalQueryError("challenge identity was already extracted")
        self._challenged = identity
        self._bit = self._rng.randbelow(2)
        message = m1 if self._bit else m0
        return self._kgc.scheme.encrypt(self._kgc.params, message, identity, self._rng)

    def finish(self, guess: int) -> GameResult:
        if self._bit is None:
            raise IllegalQueryError("finish called before challenge")
        return GameResult(won=guess == self._bit, challenge_bit=self._bit, guess=guess)


class OneWaynessGame:
    """One-wayness challenger for Boneh--Franklin (Definition 6)."""

    def __init__(self, group: PairingGroup, rng: RandomSource):
        self._rng = rng
        self._group = group
        registry = KgcRegistry(group, rng)
        self._kgc = registry.create("KGC")
        self._extracted: set[str] = set()
        self._challenged: str | None = None
        self._message: Fp2Element | None = None

    @property
    def params(self) -> IbeParams:
        return self._kgc.params

    def extract(self, identity: str) -> IbePrivateKey:
        if identity == self._challenged:
            raise IllegalQueryError("Extract on the challenge identity is forbidden")
        self._extracted.add(identity)
        return self._kgc.extract(identity)

    def challenge(self, identity: str) -> IbeCiphertext:
        if self._challenged is not None:
            raise IllegalQueryError("only one challenge per game")
        if identity in self._extracted:
            raise IllegalQueryError("challenge identity was already extracted")
        self._challenged = identity
        self._message = self._group.random_gt(self._rng)
        return self._kgc.scheme.encrypt(self._kgc.params, self._message, identity, self._rng)

    def finish(self, guess: Fp2Element) -> bool:
        if self._message is None:
            raise IllegalQueryError("finish called before challenge")
        return guess == self._message


class IndIdDrCpaGame:
    """The paper's IND-ID-DR-CPA challenger (Section 4.2).

    The adversary drives the game through the four oracle methods, then
    calls :meth:`challenge` and :meth:`finish`.  Constraints are enforced
    bidirectionally and in both phases.
    """

    def __init__(self, group: PairingGroup, rng: RandomSource):
        self._rng = rng
        self._group = group
        registry = KgcRegistry(group, rng)
        self._kgc1 = registry.create("KGC1")
        self._kgc2 = registry.create("KGC2")
        self._scheme = TypeAndIdentityPre(group)
        self._extract1_queries: set[str] = set()
        self._extract2_queries: set[str] = set()
        self._pextract_queries: set[tuple[str, str, str]] = set()
        self._preenc_queries: set[tuple[str, str, str]] = set()
        self._challenge_tuple: tuple[str, str] | None = None  # (id*, t*)
        self._bit: int | None = None

    # ------------------------------------------------------ public params

    @property
    def params1(self) -> IbeParams:
        return self._kgc1.params

    @property
    def params2(self) -> IbeParams:
        return self._kgc2.params

    @property
    def scheme(self) -> TypeAndIdentityPre:
        return self._scheme

    # ----------------------------------------------------------- oracles

    def extract1(self, identity: str) -> IbePrivateKey:
        """Extract at KGC1; constraint (a)."""
        if self._challenge_tuple is not None and identity == self._challenge_tuple[0]:
            raise IllegalQueryError("Extract1 on id* is forbidden")
        self._extract1_queries.add(identity)
        return self._kgc1.extract(identity)

    def extract2(self, identity: str) -> IbePrivateKey:
        """Extract at KGC2; constraint (b) when the challenge is set."""
        if self._challenge_tuple is not None:
            id_star, t_star = self._challenge_tuple
            if (id_star, identity, t_star) in self._pextract_queries:
                raise IllegalQueryError(
                    "Extract2 on a delegatee holding a proxy key for (id*, t*)"
                )
        self._extract2_queries.add(identity)
        return self._kgc2.extract(identity)

    def pextract(self, identity: str, delegatee: str, type_label: str) -> ProxyKey:
        """Proxy-key oracle; constraints (b) and (c)."""
        if (identity, delegatee, type_label) in self._preenc_queries:
            raise IllegalQueryError("Pextract after a Preenc+ query on the same triple")
        if self._challenge_tuple is not None:
            id_star, t_star = self._challenge_tuple
            if identity == id_star and type_label == t_star and delegatee in self._extract2_queries:
                raise IllegalQueryError(
                    "Pextract(id*, id', t*) for an already-extracted delegatee"
                )
        self._pextract_queries.add((identity, delegatee, type_label))
        delegator_key = self._kgc1.extract(identity)
        return self._scheme.pextract(delegator_key, delegatee, type_label, self._kgc2.params, self._rng)

    def preenc_dagger(
        self, message: Fp2Element, type_label: str, identity: str, delegatee: str
    ) -> ReEncryptedCiphertext:
        """The Preenc+ oracle: encrypt-then-re-encrypt without revealing the key.

        Models the curious delegatee's view of the delegator's plaintexts.
        """
        if (identity, delegatee, type_label) in self._pextract_queries:
            raise IllegalQueryError("Preenc+ after a Pextract query on the same triple")
        self._preenc_queries.add((identity, delegatee, type_label))
        delegator_key = self._kgc1.extract(identity)
        ciphertext = self._scheme.encrypt(
            self._kgc1.params, delegator_key, message, type_label, self._rng
        )
        proxy_key = self._scheme.pextract(
            delegator_key, delegatee, type_label, self._kgc2.params, self._rng
        )
        return self._scheme.preenc(ciphertext, proxy_key)

    # ---------------------------------------------------------- challenge

    def challenge(
        self, m0: Fp2Element, m1: Fp2Element, type_label: str, identity: str
    ) -> TypedCiphertext:
        if self._challenge_tuple is not None:
            raise IllegalQueryError("only one challenge per game")
        if identity in self._extract1_queries:
            raise IllegalQueryError("id* was already the input of an Extract1 query")
        for (d, delegatee, t) in self._pextract_queries:
            if d == identity and t == type_label and delegatee in self._extract2_queries:
                raise IllegalQueryError(
                    "challenge (id*, t*) conflicts with an issued proxy key + Extract2"
                )
        self._challenge_tuple = (identity, type_label)
        self._bit = self._rng.randbelow(2)
        message = m1 if self._bit else m0
        delegator_key = self._kgc1.extract(identity)
        return self._scheme.encrypt(
            self._kgc1.params, delegator_key, message, type_label, self._rng
        )

    def finish(self, guess: int) -> GameResult:
        if self._bit is None:
            raise IllegalQueryError("finish called before challenge")
        return GameResult(won=guess == self._bit, challenge_bit=self._bit, guess=guess)


def estimate_advantage(
    run_one_game,
    trials: int,
    seed: str = "advantage-estimate",
) -> float:
    """Empirical advantage ``|wins/trials - 1/2|`` over seeded trials.

    ``run_one_game(rng) -> bool`` plays a full game and reports a win.  The
    per-trial RNGs are forked from one DRBG so the estimate is reproducible.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    root = HmacDrbg(seed)
    wins = sum(1 for i in range(trials) if run_one_game(root.fork("trial-%d" % i)))
    return abs(wins / trials - 0.5)
