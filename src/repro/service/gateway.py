"""The gateway: a typed request/response front door over a shard fleet.

One :class:`ReEncryptionGateway` owns N :class:`~repro.core.proxy.ProxyService`
shards, a consistent-hash :class:`~repro.service.router.ShardRouter`, two
LRU caches and a metrics accumulator.  Callers speak the four request
types (:class:`GrantRequest`, :class:`RevokeRequest`,
:class:`ReEncryptRequest`, :class:`FetchRequest`); every admission passes
a per-tenant token-bucket rate limiter and lands in a bounded audit log.

Failures are a closed taxonomy rooted at :class:`GatewayError`, each with
a stable ``code`` string, so callers (and the audit log) never depend on
library-internal exception types leaking through.

Cache soundness: ``Preenc`` is deterministic, so cached transformation
results are exact replays — but only while the installed key is the one
that produced them.  Grants and revokes therefore invalidate both caches
for the affected delegation before touching the shard.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.core.proxy import (
    DEFAULT_MAX_LOG_ENTRIES,
    NoProxyKeyError,
    ProxyKeyTable,
    ProxyService,
)
from repro.core.scheme import TypeAndIdentityPre
from repro.phr.store import EntryNotFoundError, StoredRecord
from repro.service.batch import BatchItemError, ReEncryptBatcher
from repro.service.cache import CacheStats, LruCache
from repro.service.metrics import GatewayMetrics, MetricsSnapshot
from repro.service.router import ShardRouter

__all__ = [
    "GatewayError",
    "RateLimitedError",
    "DelegationNotFoundError",
    "EntryMissingError",
    "InvalidRequestError",
    "StoreUnavailableError",
    "TokenBucket",
    "GrantRequest",
    "GrantResponse",
    "RevokeRequest",
    "RevokeResponse",
    "ReEncryptRequest",
    "ReEncryptResponse",
    "FetchRequest",
    "FetchResponse",
    "AuditEvent",
    "ReEncryptionGateway",
]


# --------------------------------------------------------------- error taxonomy


class GatewayError(Exception):
    """Base of every error the gateway raises; ``code`` is wire-stable."""

    code = "gateway-error"


class RateLimitedError(GatewayError):
    """The tenant exhausted its token bucket."""

    code = "rate-limited"


class DelegationNotFoundError(GatewayError):
    """No proxy key exists for the requested (delegator, delegatee, type)."""

    code = "no-delegation"


class EntryMissingError(GatewayError):
    """A fetch named a (patient, entry) the store does not hold."""

    code = "entry-not-found"


class InvalidRequestError(GatewayError):
    """The request is structurally unusable (empty batch, bad fields)."""

    code = "invalid-request"


class StoreUnavailableError(GatewayError):
    """A fetch arrived but the gateway was built without a PHR store."""

    code = "no-store"


# ------------------------------------------------------------------ rate limit


class TokenBucket:
    """Per-tenant token buckets: ``rate_per_s`` refill up to ``burst``.

    The clock is injectable so tests advance time explicitly instead of
    sleeping; production uses ``time.monotonic``.
    """

    def __init__(self, rate_per_s: float, burst: float, clock: Callable[[], float]):
        if rate_per_s <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}  # tenant -> (tokens, stamp)

    def allow(self, tenant: str, cost: float = 1.0) -> bool:
        now = self._clock()
        tokens, stamp = self._buckets.get(tenant, (self.burst, now))
        tokens = min(self.burst, tokens + (now - stamp) * self.rate_per_s)
        if tokens < cost:
            self._buckets[tenant] = (tokens, now)
            return False
        self._buckets[tenant] = (tokens - cost, now)
        return True


# ------------------------------------------------------------------- requests


@dataclass(frozen=True)
class GrantRequest:
    """Install a proxy key (the delegator ran ``Pextract`` out of band)."""

    tenant: str
    proxy_key: ProxyKey


@dataclass(frozen=True)
class GrantResponse:
    shard: str


@dataclass(frozen=True)
class RevokeRequest:
    tenant: str
    delegator_domain: str
    delegator: str
    delegatee_domain: str
    delegatee: str
    type_label: str


@dataclass(frozen=True)
class RevokeResponse:
    shard: str
    removed: bool


@dataclass(frozen=True)
class ReEncryptRequest:
    tenant: str
    ciphertext: TypedCiphertext
    delegatee_domain: str
    delegatee: str


@dataclass(frozen=True)
class ReEncryptResponse:
    ciphertext: ReEncryptedCiphertext
    shard: str
    cache_hit: bool


@dataclass(frozen=True)
class FetchRequest:
    """Read stored ciphertext blobs (one entry, or a patient/category scan)."""

    tenant: str
    patient: str
    entry_id: str | None = None
    category: str | None = None


@dataclass(frozen=True)
class FetchResponse:
    records: tuple[StoredRecord, ...]


@dataclass(frozen=True)
class AuditEvent:
    """One admitted-or-refused request, as the bounded audit log records it."""

    sequence: int
    tenant: str
    action: str
    outcome: str  # "ok" or an error code
    detail: str


# -------------------------------------------------------------------- gateway


@dataclass
class ReEncryptionGateway:
    """N proxy shards behind routing, caching, batching and rate limiting."""

    scheme: TypeAndIdentityPre
    shard_count: int = 4
    store: object | None = None  # EncryptedPhrStore | FilePhrStore (duck-typed)
    rate_per_s: float | None = None  # None disables rate limiting
    burst: float | None = None  # defaults to 2 * rate_per_s
    key_cache_size: int = 256
    result_cache_size: int = 1024
    max_audit_entries: int = 10_000
    max_shard_log_entries: int = DEFAULT_MAX_LOG_ENTRIES
    clock: Callable[[], float] = time.monotonic
    _shards: dict[str, ProxyService] = field(init=False)
    _router: ShardRouter = field(init=False)
    _key_cache: LruCache = field(init=False)
    _result_cache: LruCache = field(init=False)
    _limiter: TokenBucket | None = field(init=False)
    _audit: deque = field(init=False)
    _audit_sequence: int = field(init=False, default=0)
    metrics: GatewayMetrics = field(init=False)

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError("shard_count must be positive")
        names = ["shard-%02d" % i for i in range(self.shard_count)]
        self._shards = {
            name: ProxyService(
                self.scheme, name=name, max_log_entries=self.max_shard_log_entries
            )
            for name in names
        }
        self._router = ShardRouter(names)
        self._key_cache = LruCache(self.key_cache_size, name="key_cache")
        self._result_cache = LruCache(self.result_cache_size, name="result_cache")
        self._audit = deque(maxlen=self.max_audit_entries)
        self.metrics = GatewayMetrics(clock=self.clock)
        self._limiter = None
        self.set_rate_limit(self.rate_per_s, self.burst)

    # ------------------------------------------------------------- internals

    def set_rate_limit(self, rate_per_s: float | None, burst: float | None = None) -> None:
        """Install, replace or (with ``None``) remove the per-tenant limiter.

        Existing bucket state is discarded — an admin retuning the limit
        grants every tenant a fresh burst.
        """
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._limiter = (
            TokenBucket(
                rate_per_s,
                burst if burst is not None else 2 * rate_per_s,
                self.clock,
            )
            if rate_per_s is not None
            else None
        )

    def shard_named(self, name: str) -> ProxyService:
        return self._shards[name]

    @property
    def shard_names(self) -> list[str]:
        return self._router.shards

    def _route(self, delegator_domain: str, delegator: str, type_label: str) -> str:
        return self._router.shard_for(delegator_domain, delegator, type_label)

    def _record_audit(self, tenant: str, action: str, outcome: str, detail: str) -> None:
        self._audit.append(
            AuditEvent(
                sequence=self._audit_sequence,
                tenant=tenant,
                action=action,
                outcome=outcome,
                detail=detail,
            )
        )
        self._audit_sequence += 1

    def _admit(self, tenant: str, action: str, cost: float = 1.0) -> None:
        if self._limiter is not None and not self._limiter.allow(tenant, cost):
            self.metrics.observe_rejection(rate_limited=True)
            self._record_audit(tenant, action, RateLimitedError.code, "cost=%g" % cost)
            raise RateLimitedError("tenant %r exceeded %g req/s" % (tenant, self.rate_per_s))

    def _resolve_key(
        self, index: tuple[str, str, str, str, str], shard: ProxyService
    ) -> ProxyKey:
        """Key-cache-backed table lookup; misses fall through to the shard."""
        key = self._key_cache.get(index)
        if key is None:
            key = shard.table.get(index)
            if key is None:
                raise NoProxyKeyError(
                    "no proxy key for delegator=%r delegatee=%r type=%r"
                    % (index[1], index[3], index[4])
                )
            self._key_cache.put(index, key)
        return key

    def _invalidate_delegation(self, index: tuple[str, str, str, str, str]) -> None:
        delegator_domain, delegator, delegatee_domain, delegatee, type_label = index
        self._key_cache.invalidate(index)
        self._result_cache.invalidate_where(
            lambda key: (
                key[0].domain == delegator_domain
                and key[0].identity == delegator
                and key[0].type_label == type_label
                and key[1] == delegatee_domain
                and key[2] == delegatee
            )
        )

    # ------------------------------------------------------------ operations

    def grant(self, request: GrantRequest) -> GrantResponse:
        """Install a proxy key on the shard that owns its delegator/type."""
        self._admit(request.tenant, "grant")
        start = self.clock()
        key = request.proxy_key
        self._invalidate_delegation(ProxyKeyTable.index_of(key))
        shard_name = self._route(key.delegator_domain, key.delegator, key.type_label)
        self._shards[shard_name].install_key(key)
        self.metrics.observe("grant", (self.clock() - start) * 1000, shard_name)
        self._record_audit(
            request.tenant,
            "grant",
            "ok",
            "%s->%s type=%s shard=%s" % (key.delegator, key.delegatee, key.type_label, shard_name),
        )
        return GrantResponse(shard=shard_name)

    def revoke(self, request: RevokeRequest) -> RevokeResponse:
        """Remove a delegation everywhere: shard table and both caches."""
        self._admit(request.tenant, "revoke")
        start = self.clock()
        index: tuple[str, str, str, str, str] = (
            request.delegator_domain,
            request.delegator,
            request.delegatee_domain,
            request.delegatee,
            request.type_label,
        )
        self._invalidate_delegation(index)
        shard_name = self._route(
            request.delegator_domain, request.delegator, request.type_label
        )
        removed = self._shards[shard_name].revoke_key(*index)
        self.metrics.observe("revoke", (self.clock() - start) * 1000, shard_name)
        self._record_audit(
            request.tenant,
            "revoke",
            "ok",
            "%s->%s type=%s removed=%s"
            % (request.delegator, request.delegatee, request.type_label, removed),
        )
        return RevokeResponse(shard=shard_name, removed=removed)

    def reencrypt(self, request: ReEncryptRequest) -> ReEncryptResponse:
        """Transform one ciphertext, consulting both caches."""
        self._admit(request.tenant, "reencrypt")
        start = self.clock()
        ciphertext = request.ciphertext
        shard_name = self._route(ciphertext.domain, ciphertext.identity, ciphertext.type_label)
        shard = self._shards[shard_name]
        result_key = (ciphertext, request.delegatee_domain, request.delegatee)
        cached = self._result_cache.get(result_key)
        if cached is not None:
            self.metrics.observe("reencrypt", (self.clock() - start) * 1000, shard_name)
            self._record_audit(request.tenant, "reencrypt", "ok", "cache-hit shard=%s" % shard_name)
            return ReEncryptResponse(ciphertext=cached, shard=shard_name, cache_hit=True)
        index = ProxyKeyTable.request_index(
            ciphertext, request.delegatee_domain, request.delegatee
        )
        try:
            key = self._resolve_key(index, shard)
        except NoProxyKeyError as error:
            self.metrics.observe_rejection()
            self._record_audit(
                request.tenant, "reencrypt", DelegationNotFoundError.code, str(error)
            )
            raise DelegationNotFoundError(str(error)) from error
        result = shard.reencrypt_with_key(ciphertext, key)
        self._result_cache.put(result_key, result)
        self.metrics.observe("reencrypt", (self.clock() - start) * 1000, shard_name)
        self._record_audit(request.tenant, "reencrypt", "ok", "shard=%s" % shard_name)
        return ReEncryptResponse(ciphertext=result, shard=shard_name, cache_hit=False)

    def reencrypt_batch(
        self, requests: Sequence[ReEncryptRequest]
    ) -> list[ReEncryptResponse]:
        """Transform a batch; key lookups are amortized per delegation group.

        Produces bit-identical ciphertexts to issuing the requests one by
        one (``Preenc`` is deterministic), in submission order.
        """
        if not requests:
            raise InvalidRequestError("empty batch")
        for request in requests:
            self._admit(request.tenant, "reencrypt-batch")
        start = self.clock()
        items = [
            (request.ciphertext, request.delegatee_domain, request.delegatee)
            for request in requests
        ]
        shard_names = [
            self._route(c.domain, c.identity, c.type_label) for c, _, _ in items
        ]
        hit_flags = [False] * len(items)

        def resolve(group_key: tuple[str, str, str, str, str]) -> ProxyKey:
            shard = self._shards[self._route(group_key[0], group_key[1], group_key[4])]
            return self._resolve_key(group_key, shard)

        def transform(
            ciphertext: TypedCiphertext, key: ProxyKey, position: int
        ) -> ReEncryptedCiphertext:
            result_key = (ciphertext, key.delegatee_domain, key.delegatee)
            cached = self._result_cache.get(result_key)
            if cached is not None:
                hit_flags[position] = True
                return cached
            result = self._shards[shard_names[position]].reencrypt_with_key(ciphertext, key)
            self._result_cache.put(result_key, result)
            return result

        try:
            results = ReEncryptBatcher.execute(items, resolve, transform)
        except BatchItemError as error:
            self.metrics.observe_rejection()
            tenant = requests[error.position].tenant
            if isinstance(error.cause, NoProxyKeyError):
                self._record_audit(
                    tenant, "reencrypt-batch", DelegationNotFoundError.code, str(error.cause)
                )
                raise DelegationNotFoundError(str(error.cause)) from error
            self._record_audit(tenant, "reencrypt-batch", GatewayError.code, str(error.cause))
            raise GatewayError(str(error.cause)) from error
        elapsed_ms = (self.clock() - start) * 1000
        per_item_ms = elapsed_ms / len(requests)
        for request, shard_name in zip(requests, shard_names):
            self.metrics.observe("reencrypt", per_item_ms, shard_name)
            self._record_audit(request.tenant, "reencrypt-batch", "ok", "shard=%s" % shard_name)
        return [
            ReEncryptResponse(ciphertext=result, shard=shard_name, cache_hit=hit)
            for result, shard_name, hit in zip(results, shard_names, hit_flags)
        ]

    def fetch(self, request: FetchRequest) -> FetchResponse:
        """Read ciphertext blobs from the attached PHR store."""
        self._admit(request.tenant, "fetch")
        if self.store is None:
            self.metrics.observe_rejection()
            self._record_audit(request.tenant, "fetch", StoreUnavailableError.code, "")
            raise StoreUnavailableError("gateway has no PHR store attached")
        start = self.clock()
        try:
            if request.entry_id is not None:
                records = (self.store.get(request.patient, request.entry_id),)
            else:
                records = tuple(self.store.entries_for(request.patient, request.category))
        except EntryNotFoundError as error:
            self.metrics.observe_rejection()
            self._record_audit(request.tenant, "fetch", EntryMissingError.code, str(error))
            raise EntryMissingError(str(error)) from error
        self.metrics.observe("fetch", (self.clock() - start) * 1000)
        self._record_audit(
            request.tenant, "fetch", "ok", "patient=%s n=%d" % (request.patient, len(records))
        )
        return FetchResponse(records=records)

    # ---------------------------------------------------------- observability

    @property
    def audit(self) -> list[AuditEvent]:
        """The bounded audit log (copy, oldest first)."""
        return list(self._audit)

    def key_count(self) -> int:
        """Total installed keys across all shards."""
        return sum(shard.key_count() for shard in self._shards.values())

    def shard_key_counts(self) -> dict[str, int]:
        return {name: shard.key_count() for name, shard in self._shards.items()}

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot(
            caches={
                "key_cache": self._key_cache.stats(),
                "result_cache": self._result_cache.stats(),
            }
        )

    def cache_stats(self) -> dict[str, CacheStats]:
        return {
            "key_cache": self._key_cache.stats(),
            "result_cache": self._result_cache.stats(),
        }
