"""Pairing layer: Miller loop, reduced Tate pairing, and the group facade."""

from repro.pairing.group import PairingGroup
from repro.pairing.tate import miller_loop, multi_tate_pairing, tate_pairing

__all__ = ["PairingGroup", "tate_pairing", "multi_tate_pairing", "miller_loop"]
