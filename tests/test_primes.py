"""Tests for Miller--Rabin and prime generation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math.drbg import HmacDrbg
from repro.math.primes import SMALL_PRIMES, is_probable_prime, next_prime, random_prime

# Carmichael numbers fool Fermat tests; Miller--Rabin must reject them.
CARMICHAEL = (561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265)

KNOWN_PRIMES = (2, 3, 5, 7, 101, 104729, 2**31 - 1, 2**61 - 1)
KNOWN_COMPOSITES = (1, 4, 100, 104730, (2**31 - 1) * 3, 2**32 + 1)


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_accepts_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_rejects_composites(self, n):
        assert not is_probable_prime(n)

    @pytest.mark.parametrize("n", CARMICHAEL)
    def test_rejects_carmichael_numbers(self, n):
        assert not is_probable_prime(n)

    def test_negative_and_small(self):
        assert not is_probable_prime(-7)
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)

    def test_large_prime_probabilistic_path(self):
        # Above the deterministic bound: uses random witnesses.
        p = 2**89 - 1  # Mersenne prime
        assert is_probable_prime(p, rng=HmacDrbg("witnesses"))
        assert not is_probable_prime(p * (2**61 - 1), rng=HmacDrbg("witnesses"))

    def test_sieve_consistency(self):
        assert SMALL_PRIMES[:10] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
        assert all(is_probable_prime(p) for p in SMALL_PRIMES)

    @given(st.integers(min_value=2, max_value=5000))
    def test_matches_trial_division(self, n):
        by_trial = n > 1 and all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_probable_prime(n) == by_trial


class TestRandomPrime:
    def test_exact_bit_length(self):
        rng = HmacDrbg("prime-gen")
        for bits in (8, 16, 32, 64):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic_with_seed(self):
        assert random_prime(32, HmacDrbg("s")) == random_prime(32, HmacDrbg("s"))

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            random_prime(1)


class TestNextPrime:
    def test_known_values(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(10) == 11
        assert next_prime(13) == 17
        assert next_prime(100) == 101

    @given(st.integers(min_value=0, max_value=10**6))
    def test_result_is_prime_and_greater(self, n):
        p = next_prime(n)
        assert p > n
        assert is_probable_prime(p)
