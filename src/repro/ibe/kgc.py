"""Key Generation Centers and the multi-domain registry.

The paper's delegation crosses trust domains: the delegator is registered at
KGC1 and the delegatee at KGC2, and the two KGCs share only the group
description.  :class:`KeyGenerationCenter` is a stateful wrapper around one
Boneh--Franklin domain (it owns the master key and answers Extract
requests); :class:`KgcRegistry` manages several such domains over a shared
:class:`~repro.pairing.group.PairingGroup`, mirroring the paper's setting.
"""

from __future__ import annotations

from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.keys import IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.pairing.group import PairingGroup

__all__ = ["KeyGenerationCenter", "KgcRegistry"]


class KeyGenerationCenter:
    """A live KGC: holds the master key, issues private keys, keeps an audit."""

    def __init__(self, group: PairingGroup, domain: str, rng: RandomSource | None = None):
        self.scheme = BonehFranklinIbe(group, domain)
        self.domain = domain
        self._params, self._master = self.scheme.setup(rng or system_random())
        self._issued: dict[str, IbePrivateKey] = {}

    @property
    def params(self) -> IbeParams:
        """Public parameters (safe to publish)."""
        return self._params

    def extract(self, identity: str) -> IbePrivateKey:
        """Issue (or re-issue, deterministically) the key for ``identity``."""
        if identity not in self._issued:
            self._issued[identity] = self.scheme.extract(self._master, identity)
        return self._issued[identity]

    def has_issued(self, identity: str) -> bool:
        return identity in self._issued

    def issued_identities(self) -> list[str]:
        """Identities that have requested keys (the KGC's audit view)."""
        return sorted(self._issued)


class KgcRegistry:
    """Several KGC domains sharing one pairing group (the paper's setting)."""

    def __init__(self, group: PairingGroup, rng: RandomSource | None = None):
        self.group = group
        self._rng = rng or system_random()
        self._centers: dict[str, KeyGenerationCenter] = {}

    def create(self, domain: str) -> KeyGenerationCenter:
        """Create a new KGC domain; raises if the name is taken."""
        if domain in self._centers:
            raise ValueError("domain %r already exists" % domain)
        rng = self._rng.fork(domain) if hasattr(self._rng, "fork") else self._rng
        center = KeyGenerationCenter(self.group, domain, rng)
        self._centers[domain] = center
        return center

    def get(self, domain: str) -> KeyGenerationCenter:
        if domain not in self._centers:
            raise KeyError("no KGC domain %r; create it first" % domain)
        return self._centers[domain]

    def __contains__(self, domain: str) -> bool:
        return domain in self._centers

    def domains(self) -> list[str]:
        return sorted(self._centers)
