"""Tests for the synthetic PHR generator and workload mixes."""

import pytest

from repro.math.drbg import HmacDrbg
from repro.phr.generator import PhrGenerator, WorkloadMix
from repro.phr.records import DEFAULT_TAXONOMY, PhrEntry


class TestGenerator:
    def test_deterministic(self):
        a = PhrGenerator(HmacDrbg("seed"), "alice").history(2)
        b = PhrGenerator(HmacDrbg("seed"), "alice").history(2)
        assert a == b

    def test_history_covers_all_categories(self):
        entries = PhrGenerator(HmacDrbg("s"), "alice").history(entries_per_category=2)
        assert len(entries) == 2 * len(DEFAULT_TAXONOMY)
        categories = {entry.category for entry in entries}
        assert categories == {c.label for c in DEFAULT_TAXONOMY}

    def test_entry_ids_unique(self):
        entries = PhrGenerator(HmacDrbg("s"), "alice").history(3)
        ids = [e.entry_id for e in entries]
        assert len(ids) == len(set(ids))

    def test_entries_serialise(self):
        for entry in PhrGenerator(HmacDrbg("s"), "alice").history(1):
            assert PhrEntry.from_bytes(entry.to_bytes()) == entry

    def test_entry_for_each_category(self):
        generator = PhrGenerator(HmacDrbg("s"), "p")
        for category in DEFAULT_TAXONOMY:
            entry = generator.entry_for(category.label)
            assert entry.category == category.label
            assert entry.content  # non-empty payload

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            PhrGenerator(HmacDrbg("s"), "p").entry_for("x-rays")

    def test_self_reported_categories_authored_by_self(self):
        generator = PhrGenerator(HmacDrbg("s"), "p")
        assert generator.vitals().author == "self"
        assert generator.food_statistics().author == "self"

    def test_dates_plausible(self):
        generator = PhrGenerator(HmacDrbg("s"), "p")
        for _ in range(20):
            date = generator.illness_history().created_at
            year, month, day = map(int, date.split("-"))
            assert 2000 <= year <= 2008
            assert 1 <= month <= 12
            assert 1 <= day <= 28


class TestWorkloadMix:
    def test_draws_respect_support(self):
        mix = WorkloadMix({"a": 1, "b": 3})
        rng = HmacDrbg("w")
        draws = [mix.draw(rng) for _ in range(200)]
        assert set(draws) == {"a", "b"}
        assert draws.count("b") > draws.count("a")

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadMix({})
        with pytest.raises(ValueError):
            WorkloadMix({"a": 0})

    def test_clinical_default_valid(self):
        mix = WorkloadMix.clinical_default()
        rng = HmacDrbg("c")
        taxonomy = {c.label for c in DEFAULT_TAXONOMY}
        for _ in range(50):
            assert mix.draw(rng) in taxonomy

    def test_deterministic_draws(self):
        mix = WorkloadMix({"a": 1, "b": 1})
        r1, r2 = HmacDrbg("d"), HmacDrbg("d")
        assert [mix.draw(r1) for _ in range(5)] == [mix.draw(r2) for _ in range(5)]
