"""Tests for the ProxyService actor (key table, enforcement, logging)."""

import pytest

from repro.core.proxy import NoProxyKeyError, ProxyService


@pytest.fixture()
def delegation(pre_setting, group, rng):
    scheme, kgc1, kgc2, alice, bob = pre_setting
    proxy = ProxyService(scheme)
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(kgc1.params, alice, message, "t1", rng)
    proxy_key = scheme.pextract(alice, "bob", "t1", kgc2.params, rng)
    return scheme, proxy, message, ciphertext, proxy_key, bob


class TestKeyManagement:
    def test_install_and_count(self, delegation):
        _, proxy, _, _, proxy_key, _ = delegation
        assert proxy.key_count() == 0
        proxy.install_key(proxy_key)
        assert proxy.key_count() == 1
        proxy.install_key(proxy_key)  # replace, not duplicate
        assert proxy.key_count() == 1

    def test_revoke(self, delegation):
        _, proxy, _, _, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        assert proxy.revoke_key("KGC1", "alice", "KGC2", "bob", "t1")
        assert proxy.key_count() == 0
        assert not proxy.revoke_key("KGC1", "alice", "KGC2", "bob", "t1")

    def test_delegations_for(self, pre_setting, rng):
        scheme, _, kgc2, alice, _ = pre_setting
        proxy = ProxyService(scheme)
        proxy.install_key(scheme.pextract(alice, "bob", "t1", kgc2.params, rng))
        proxy.install_key(scheme.pextract(alice, "bob", "t2", kgc2.params, rng))
        proxy.install_key(scheme.pextract(alice, "carol", "t1", kgc2.params, rng))
        assert proxy.delegations_for("alice") == [
            ("bob", "t1"),
            ("bob", "t2"),
            ("carol", "t1"),
        ]
        assert proxy.delegations_for("nobody") == []


class TestReEncryption:
    def test_served_request(self, delegation):
        scheme, proxy, message, ciphertext, proxy_key, bob = delegation
        proxy.install_key(proxy_key)
        assert proxy.can_reencrypt(ciphertext, "KGC2", "bob")
        transformed = proxy.reencrypt(ciphertext, "KGC2", "bob")
        assert scheme.decrypt_reencrypted(transformed, bob) == message

    def test_no_key_refused(self, delegation):
        _, proxy, _, ciphertext, _, _ = delegation
        assert not proxy.can_reencrypt(ciphertext, "KGC2", "bob")
        with pytest.raises(NoProxyKeyError):
            proxy.reencrypt(ciphertext, "KGC2", "bob")

    def test_wrong_type_refused(self, pre_setting, group, rng):
        scheme, kgc1, kgc2, alice, _ = pre_setting
        proxy = ProxyService(scheme)
        proxy.install_key(scheme.pextract(alice, "bob", "t1", kgc2.params, rng))
        other = scheme.encrypt(kgc1.params, alice, group.random_gt(rng), "t2", rng)
        with pytest.raises(NoProxyKeyError):
            proxy.reencrypt(other, "KGC2", "bob")

    def test_wrong_delegatee_refused(self, delegation):
        _, proxy, _, ciphertext, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        with pytest.raises(NoProxyKeyError):
            proxy.reencrypt(ciphertext, "KGC2", "carol")

    def test_get_key(self, delegation):
        _, proxy, _, ciphertext, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        assert proxy.get_key(ciphertext, "KGC2", "bob") is proxy_key
        with pytest.raises(NoProxyKeyError):
            proxy.get_key(ciphertext, "KGC2", "nobody")


class TestLog:
    def test_log_records_transformations(self, delegation):
        _, proxy, _, ciphertext, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        proxy.reencrypt(ciphertext, "KGC2", "bob")
        proxy.reencrypt(ciphertext, "KGC2", "bob")
        log = proxy.log
        assert len(log) == 2
        assert log[0].delegator == "alice"
        assert log[0].delegatee == "bob"
        assert log[0].type_label == "t1"
        assert [entry.sequence for entry in log] == [0, 1]

    def test_log_is_a_copy(self, delegation):
        _, proxy, _, ciphertext, proxy_key, _ = delegation
        proxy.install_key(proxy_key)
        proxy.reencrypt(ciphertext, "KGC2", "bob")
        snapshot = proxy.log
        snapshot.clear()
        assert len(proxy.log) == 1

    def test_refused_requests_not_logged(self, delegation):
        _, proxy, _, ciphertext, _, _ = delegation
        with pytest.raises(NoProxyKeyError):
            proxy.reencrypt(ciphertext, "KGC2", "bob")
        assert proxy.log == []
