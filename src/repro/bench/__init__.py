"""Benchmark instrumentation: operation counters, timers, table rendering."""

from repro.bench.counters import OperationCounter, count_operations, record_operation
from repro.bench.report import print_table, render_table
from repro.bench.timing import TimedResult, measure

__all__ = [
    "OperationCounter",
    "count_operations",
    "record_operation",
    "TimedResult",
    "measure",
    "render_table",
    "print_table",
]
