"""Tests for the bench instrumentation helpers (timing, tables)."""

import pytest

from repro.bench.report import print_table, render_table
from repro.bench.timing import measure


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table("title", ["col-a", "b"], [["1", "22"], ["333", "4"]])
        lines = text.strip().splitlines()
        assert lines[0] == "== title =="
        assert "col-a" in lines[1]
        assert set(lines[2]) == {"-"}
        assert "333" in text

    def test_row_width_validated(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table("t", ["a"], [])
        assert "== t ==" in text

    def test_print_table_goes_to_stdout(self, capsys):
        print_table("hello", ["x"], [["y"]])
        captured = capsys.readouterr().out
        assert "hello" in captured and "y" in captured

    def test_wide_cells_set_column_width(self):
        text = render_table("t", ["h"], [["a-very-long-cell-value"]])
        header_line = text.strip().splitlines()[1]
        assert header_line == "h"


class TestMeasure:
    def test_basic_measurement(self):
        result = measure("noop", lambda: None, repeats=5)
        assert result.label == "noop"
        assert result.repeats == 5
        assert result.min_ms <= result.median_ms
        assert result.median_ms < 50  # a no-op cannot take 50ms

    def test_counts_operations_once(self, group):
        result = measure("mul", lambda: group.g1_mul(group.generator, 7), repeats=3)
        assert result.operations.get("g1_mul") == 1

    def test_operations_summary(self, group):
        result = measure("pair", lambda: group.pair(group.generator, group.generator), repeats=1)
        assert "pairing=1" in result.operations_summary()

    def test_empty_summary(self):
        result = measure("noop", lambda: None, repeats=1)
        assert result.operations_summary() == "-"

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            measure("x", lambda: None, repeats=0)

    def test_function_actually_runs(self):
        calls = []
        measure("count", lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
