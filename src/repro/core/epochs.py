"""Epoch-scoped delegation: time-bounded proxy keys without revocation lag.

Section 5 calls the proxy assignment "a dynamic process" (Alice installs
a proxy key when she travels and wants it dead when she returns).  Plain
revocation requires the proxy to actually delete the key; a *corrupted*
proxy may keep it forever.  The standard cryptographic fix rides directly
on the paper's type mechanism: fold the **epoch** into the type label,

    effective type  =  "<category>@<epoch>"

so a proxy key is valid for exactly one (category, epoch) pair.  When the
epoch rolls over, old proxy keys stop matching fresh ciphertexts *by the
scheme's own type isolation* — no deletion required, no new assumptions,
no change to the core algorithms.  The cost is that long-lived grants
need one ``Pextract`` per epoch (measured in ``bench_e8_substrate.py``).

:class:`EpochSchedule` turns timestamps into discrete epoch labels;
:class:`TemporalPre` wraps :class:`~repro.core.scheme.TypeAndIdentityPre`
with epoch-qualified encryption and delegation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.keys import IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource
from repro.math.fields import Fp2Element

__all__ = ["EpochSchedule", "TemporalPre", "ExpiredDelegationError"]

_SEPARATOR = "@"


class ExpiredDelegationError(ValueError):
    """A proxy key from a previous epoch was applied to a current ciphertext."""


@dataclass(frozen=True)
class EpochSchedule:
    """Discretises a monotone clock into fixed-length epochs.

    ``epoch_seconds`` is the grant lifetime (e.g. 86400 for daily keys).
    The clock is supplied by the caller (unix seconds) so tests and
    benchmarks control time explicitly.
    """

    epoch_seconds: int

    def __post_init__(self):
        if self.epoch_seconds < 1:
            raise ValueError("epoch length must be at least one second")

    def epoch_of(self, timestamp: int) -> int:
        """The epoch number containing ``timestamp``."""
        if timestamp < 0:
            raise ValueError("timestamps are non-negative unix seconds")
        return timestamp // self.epoch_seconds

    def label(self, category: str, timestamp: int) -> str:
        """The effective type label for a category at a point in time."""
        if _SEPARATOR in category:
            raise ValueError("category must not contain %r" % _SEPARATOR)
        return "%s%sepoch-%d" % (category, _SEPARATOR, self.epoch_of(timestamp))

    @staticmethod
    def split(label: str) -> tuple[str, int]:
        """Recover ``(category, epoch)`` from an effective label."""
        category, _, suffix = label.rpartition(_SEPARATOR)
        if not category or not suffix.startswith("epoch-"):
            raise ValueError("not an epoch-qualified label: %r" % label)
        return category, int(suffix[len("epoch-"):])


class TemporalPre:
    """Epoch-qualified encryption and delegation over the paper's scheme."""

    def __init__(self, scheme: TypeAndIdentityPre, schedule: EpochSchedule):
        self.scheme = scheme
        self.schedule = schedule

    def encrypt(
        self,
        delegator_params: IbeParams,
        delegator_key: IbePrivateKey,
        message: Fp2Element,
        category: str,
        timestamp: int,
        rng: RandomSource | None = None,
    ) -> TypedCiphertext:
        """Encrypt under the category *at the current epoch*."""
        label = self.schedule.label(category, timestamp)
        return self.scheme.encrypt(delegator_params, delegator_key, message, label, rng)

    def decrypt(self, ciphertext: TypedCiphertext, delegator_key: IbePrivateKey) -> Fp2Element:
        """The delegator decrypts regardless of epoch (his key is timeless)."""
        return self.scheme.decrypt(ciphertext, delegator_key)

    def grant(
        self,
        delegator_key: IbePrivateKey,
        delegatee: str,
        category: str,
        timestamp: int,
        delegatee_params: IbeParams,
        rng: RandomSource | None = None,
    ) -> ProxyKey:
        """A proxy key valid for exactly one (category, epoch) pair."""
        label = self.schedule.label(category, timestamp)
        return self.scheme.pextract(delegator_key, delegatee, label, delegatee_params, rng)

    def reencrypt(
        self, ciphertext: TypedCiphertext, proxy_key: ProxyKey
    ) -> ReEncryptedCiphertext:
        """Transform; raises :class:`ExpiredDelegationError` on epoch mismatch.

        The error is a *courtesy* diagnosis — even a proxy that skips the
        check produces garbage, because the epoch lives inside the type
        exponent (demonstrated in the tests).
        """
        key_category, key_epoch = EpochSchedule.split(proxy_key.type_label)
        ct_category, ct_epoch = EpochSchedule.split(ciphertext.type_label)
        if key_category == ct_category and key_epoch != ct_epoch:
            raise ExpiredDelegationError(
                "proxy key is for epoch %d, ciphertext is from epoch %d"
                % (key_epoch, ct_epoch)
            )
        return self.scheme.preenc(ciphertext, proxy_key)

    def decrypt_reencrypted(
        self, ciphertext: ReEncryptedCiphertext, delegatee_key: IbePrivateKey
    ) -> Fp2Element:
        return self.scheme.decrypt_reencrypted(ciphertext, delegatee_key)

    def category_of(self, ciphertext: TypedCiphertext) -> str:
        """The user-facing category, with the epoch qualifier stripped."""
        return EpochSchedule.split(ciphertext.type_label)[0]
