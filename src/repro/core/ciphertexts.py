"""Value objects for the type-and-identity-based PRE scheme.

Field names follow Section 4.1 of the paper:

* :class:`TypedCiphertext` is ``c = (c1, c2, c3)`` with ``c1 = g^r``,
  ``c2 = m * e(pk_id, pk)^(r * H2(sk_id || t))`` and ``c3 = t``;
* :class:`ProxyKey` is ``rk_{id_i -> id_j} = (t, sk_i^{-H2(sk_i||t)} * H1(X),
  Encrypt2(X, id_j))``;
* :class:`ReEncryptedCiphertext` is ``c_j = (c_j1, c_j2, c_j3)`` where
  ``c_j3`` carries the encrypted blinding element to the delegatee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.curve import Point
from repro.ibe.keys import IbeCiphertext
from repro.math.fields import Fp2Element

__all__ = ["TypedCiphertext", "ProxyKey", "ReEncryptedCiphertext"]


@dataclass(frozen=True)
class TypedCiphertext:
    """A type-tagged ciphertext under the delegator's identity.

    ``type_label`` is stored in the clear (it is ``c3`` in the paper); the
    confidentiality goal covers the payload only.
    """

    domain: str
    identity: str
    c1: Point
    c2: Fp2Element
    type_label: str

    def header(self) -> tuple[str, str, str]:
        """Routing metadata the proxy may look at: (domain, identity, type)."""
        return (self.domain, self.identity, self.type_label)


@dataclass(frozen=True)
class ProxyKey:
    """A re-encryption key for exactly one (delegator, delegatee, type) triple.

    ``rk_point`` is the G1 element ``sk_i^{-H2(sk_i||t)} * H1(X)``; the
    blinding element ``X`` travels to the delegatee inside
    ``encrypted_blind`` and never appears in the clear.
    """

    delegator_domain: str
    delegator: str
    delegatee_domain: str
    delegatee: str
    type_label: str
    rk_point: Point
    encrypted_blind: IbeCiphertext

    def matches(self, ciphertext: TypedCiphertext) -> bool:
        """True when this key is allowed to transform ``ciphertext``."""
        return (
            self.delegator_domain == ciphertext.domain
            and self.delegator == ciphertext.identity
            and self.type_label == ciphertext.type_label
        )


@dataclass(frozen=True)
class ReEncryptedCiphertext:
    """The output of ``Preenc``: decryptable only by the delegatee."""

    delegator_domain: str
    delegator: str
    delegatee_domain: str
    delegatee: str
    type_label: str
    c1: Point
    c2: Fp2Element
    encrypted_blind: IbeCiphertext
