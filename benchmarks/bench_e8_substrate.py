"""E8 — substrate and extension ablations (beyond the paper's text).

Prices the engineering choices DESIGN.md calls out, so the headline
numbers in E1/E2 are explainable:

* **scalar multiplication**: schoolbook double-and-add vs wNAF vs the
  fixed-base window table used for the generator;
* **multi-pairing**: two independent pairings vs one shared final
  exponentiation (the BB1 decryption path);
* **threshold extraction**: single-KGC Extract vs t-of-n combination
  (the escrow mitigation the paper's threat model points to);
* **epoch-scoped grants**: the per-epoch ``Pextract`` cost that buys
  deletion-free expiry.
"""

from __future__ import annotations

import pytest

from repro.bench.report import print_table, record_bench_snapshot
from repro.bench.timing import measure
from repro.core.epochs import EpochSchedule, TemporalPre
from repro.core.scheme import TypeAndIdentityPre
from repro.ec.scalarmult import FixedBaseTable, wnaf_mul
from repro.ibe.kgc import KgcRegistry
from repro.ibe.threshold import ThresholdKgc
from repro.math import backend as int_backend
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.pairing.miller import MillerPrecomp
from repro.pairing.tate import (
    multi_tate_pairing,
    tate_pairing,
    tate_pairing_affine,
    tate_pairing_batch,
)

GROUP_NAME = "SS256"


def test_e8_scalar_mult_ablation(benchmark):
    group = PairingGroup.shared(GROUP_NAME)
    rng = HmacDrbg("e8-mul")
    scalars = [group.random_scalar(rng) for _ in range(8)]
    base = group.params.random_point(rng)
    table = FixedBaseTable(group.generator, group.order.bit_length())

    schoolbook = measure(
        "schoolbook", lambda: [base.mul_schoolbook(s) for s in scalars], repeats=3
    )
    wnaf = measure("wnaf", lambda: [wnaf_mul(base, s) for s in scalars], repeats=3)
    fixed = measure("fixed-base", lambda: [table.mul(s) for s in scalars], repeats=3)
    print_table(
        "E8: scalar multiplication on %s (8 scalars, median ms)" % GROUP_NAME,
        ["method", "ms", "note"],
        [
            ["schoolbook double-and-add", "%.1f" % schoolbook.median_ms, "reference"],
            ["wNAF (w=4)", "%.1f" % wnaf.median_ms, "arbitrary points"],
            ["fixed-base window", "%.1f" % fixed.median_ms,
             "generator/public keys (table: %d pts)" % table.table_size()],
        ],
    )
    benchmark.group = "E8 scalar mult"
    benchmark.pedantic(lambda: table.mul(scalars[0]), rounds=5, iterations=1)


def test_e8_multi_pairing_ablation(benchmark):
    group = PairingGroup.shared(GROUP_NAME)
    rng = HmacDrbg("e8-pair")
    a, b = group.params.random_point(rng), group.params.random_point(rng)
    c, d = group.params.random_point(rng), group.params.random_point(rng)

    separate = measure(
        "separate",
        lambda: tate_pairing(group.params, a, b) * tate_pairing(group.params, c, d),
        repeats=3,
    )
    shared = measure(
        "shared",
        lambda: multi_tate_pairing(group.params, [(a, b), (c, d)]),
        repeats=3,
    )
    print_table(
        "E8: product of two pairings on %s (median ms)" % GROUP_NAME,
        ["method", "ms"],
        [
            ["two pairings, two final exps", "%.1f" % separate.median_ms],
            ["multi-pairing, one final exp", "%.1f" % shared.median_ms],
        ],
    )
    benchmark.group = "E8 pairings"
    benchmark.pedantic(
        lambda: multi_tate_pairing(group.params, [(a, b), (c, d)]), rounds=3, iterations=1
    )


@pytest.mark.parametrize("threshold,servers", [(1, 1), (2, 3), (3, 5)])
def test_e8_threshold_extraction(benchmark, threshold, servers):
    group = PairingGroup.shared("TOY")
    kgc = ThresholdKgc(group, "D", threshold, servers, HmacDrbg("e8-thr"))
    counter = [0]

    def extract():
        counter[0] += 1
        kgc.extract("user-%d" % counter[0])

    benchmark.group = "E8 threshold extract"
    benchmark.name = "%d-of-%d" % (threshold, servers)
    benchmark.pedantic(extract, rounds=5, iterations=1)


def test_e8_substrate_speedup_gate():
    """The substrate rewrite's contract, enforced: the fast paths are
    bit-identical to the affine/schoolbook reference AND actually fast.

    Gate: >=2x on scalar multiplication (Jacobian vs schoolbook affine),
    >=3x on the pairing (Miller precomp / batch vs the affine loop).
    Measured headroom is ~10x on both, so the gate only trips on a real
    regression, not on scheduler noise.
    """
    group = PairingGroup.shared(GROUP_NAME)
    params = group.params
    rng = HmacDrbg("e8-gate")
    scalars = [group.random_scalar(rng) for _ in range(4)]
    base = params.random_point(rng)
    fixed = params.random_point(rng)
    others = [params.random_point(rng) for _ in range(4)]
    precomp = MillerPrecomp(params, fixed)

    # -- correctness first: every fast path must reproduce the reference.
    for s in scalars:
        reference = base.mul_schoolbook(s)
        assert base * s == reference
        assert wnaf_mul(base, s) == reference
    for other in others:
        reference = tate_pairing_affine(params, fixed, other)
        assert tate_pairing(params, fixed, other) == reference
        assert tate_pairing(params, fixed, other, precomp=precomp) == reference
    batch = tate_pairing_batch(params, fixed, others)
    for other, combined in zip(others, batch):
        assert combined == tate_pairing_affine(params, fixed, other)

    # -- then speed.
    mul_ref = measure(
        "mul/schoolbook", lambda: [base.mul_schoolbook(s) for s in scalars], repeats=3
    )
    mul_jac = measure("mul/jacobian", lambda: [base * s for s in scalars], repeats=3)
    mul_wnaf = measure(
        "mul/wnaf", lambda: [wnaf_mul(base, s) for s in scalars], repeats=3
    )
    pair_ref = measure(
        "pair/affine",
        lambda: [tate_pairing_affine(params, fixed, o) for o in others],
        repeats=3,
    )
    pair_fast = measure(
        "pair/jacobian",
        lambda: [tate_pairing(params, fixed, o) for o in others],
        repeats=3,
    )
    pair_pre = measure(
        "pair/precomp",
        lambda: [tate_pairing(params, fixed, o, precomp=precomp) for o in others],
        repeats=3,
    )
    pair_batch = measure(
        "pair/batch", lambda: tate_pairing_batch(params, fixed, others), repeats=3
    )

    mul_speedup = mul_ref.median_ms / mul_jac.median_ms
    wnaf_speedup = mul_ref.median_ms / mul_wnaf.median_ms
    pair_speedup = pair_ref.median_ms / pair_fast.median_ms
    pre_speedup = pair_ref.median_ms / pair_pre.median_ms
    batch_speedup = pair_ref.median_ms / pair_batch.median_ms

    print_table(
        "E8 gate: substrate speedups on %s (backend=%s)"
        % (GROUP_NAME, int_backend.backend_name()),
        ["path", "median ms", "speedup vs reference"],
        [
            ["scalar mult: schoolbook (ref)", "%.2f" % mul_ref.median_ms, "1.0x"],
            ["scalar mult: jacobian", "%.2f" % mul_jac.median_ms, "%.1fx" % mul_speedup],
            ["scalar mult: wnaf", "%.2f" % mul_wnaf.median_ms, "%.1fx" % wnaf_speedup],
            ["pairing: affine (ref)", "%.2f" % pair_ref.median_ms, "1.0x"],
            ["pairing: jacobian", "%.2f" % pair_fast.median_ms, "%.1fx" % pair_speedup],
            ["pairing: precomp", "%.2f" % pair_pre.median_ms, "%.1fx" % pre_speedup],
            ["pairing: batch", "%.2f" % pair_batch.median_ms, "%.1fx" % batch_speedup],
        ],
    )

    record_bench_snapshot(
        "E8",
        {
            "experiment": "E8 substrate speedup gate",
            "group": GROUP_NAME,
            "int_backend": int_backend.backend_name(),
            "workload": {
                "scalar_mults": len(scalars),
                "pairings": len(others),
            },
            "median_ms": {
                "scalar_mult_schoolbook": round(mul_ref.median_ms, 3),
                "scalar_mult_jacobian": round(mul_jac.median_ms, 3),
                "scalar_mult_wnaf": round(mul_wnaf.median_ms, 3),
                "pairing_affine": round(pair_ref.median_ms, 3),
                "pairing_jacobian": round(pair_fast.median_ms, 3),
                "pairing_precomp": round(pair_pre.median_ms, 3),
                "pairing_batch": round(pair_batch.median_ms, 3),
            },
            "speedup_vs_reference": {
                "scalar_mult_jacobian": round(mul_speedup, 2),
                "scalar_mult_wnaf": round(wnaf_speedup, 2),
                "pairing_jacobian": round(pair_speedup, 2),
                "pairing_precomp": round(pre_speedup, 2),
                "pairing_batch": round(batch_speedup, 2),
            },
            "gate": {"scalar_mult_min": 2.0, "pairing_min": 3.0},
        },
    )

    assert mul_speedup >= 2.0, "Jacobian scalar mult regressed: %.2fx" % mul_speedup
    assert wnaf_speedup >= 2.0, "wNAF scalar mult regressed: %.2fx" % wnaf_speedup
    assert pair_speedup >= 3.0, "Jacobian pairing regressed: %.2fx" % pair_speedup
    assert pre_speedup >= 3.0, "precomp pairing regressed: %.2fx" % pre_speedup
    assert batch_speedup >= 3.0, "batch pairing regressed: %.2fx" % batch_speedup


def test_e8_epoch_grant_cost(benchmark):
    """The price of deletion-free expiry: one Pextract per epoch."""
    group = PairingGroup.shared("TOY")
    rng = HmacDrbg("e8-epoch")
    registry = KgcRegistry(group, rng)
    kgc1, kgc2 = registry.create("KGC1"), registry.create("KGC2")
    alice = kgc1.extract("alice")
    temporal = TemporalPre(TypeAndIdentityPre(group), EpochSchedule(86400))

    day = [0]

    def regrant():
        day[0] += 1
        temporal.grant(alice, "bob", "labs", day[0] * 86400, kgc2.params, rng)

    benchmark.group = "E8 epoch grants"
    benchmark.pedantic(regrant, rounds=5, iterations=1)
