"""Tests for the PHR data model, policy, store and audit log."""

import pytest

from repro.phr.audit import AuditLog
from repro.phr.policy import DisclosurePolicy
from repro.phr.records import DEFAULT_TAXONOMY, PhrCategory, PhrEntry, Sensitivity
from repro.phr.store import EncryptedPhrStore, EntryNotFoundError


class TestCategories:
    def test_default_taxonomy_covers_paper_examples(self):
        labels = {c.label for c in DEFAULT_TAXONOMY}
        # Section 5: illness history (t1), food statistics (t2), emergency (t3).
        assert {"illness-history", "food-statistics", "emergency-profile"} <= labels

    def test_sensitivity_ordering(self):
        by_label = {c.label: c for c in DEFAULT_TAXONOMY}
        assert by_label["illness-history"].sensitivity == Sensitivity.TOP_SECRET
        assert by_label["food-statistics"].sensitivity == Sensitivity.LOW
        assert (
            by_label["illness-history"].sensitivity > by_label["food-statistics"].sensitivity
        )

    def test_invalid_sensitivity_rejected(self):
        with pytest.raises(ValueError):
            PhrCategory("x", "desc", 99)

    def test_whitespace_label_rejected(self):
        with pytest.raises(ValueError):
            PhrCategory("has space", "desc", Sensitivity.LOW)
        with pytest.raises(ValueError):
            PhrCategory("", "desc", Sensitivity.LOW)

    def test_labels_unique(self):
        labels = [c.label for c in DEFAULT_TAXONOMY]
        assert len(labels) == len(set(labels))


class TestEntries:
    def test_round_trip(self):
        entry = PhrEntry(
            entry_id="e1",
            category="lab-results",
            author="city-lab",
            created_at="2007-05-01",
            content={"test": "HbA1c", "value": 6.2},
        )
        assert PhrEntry.from_bytes(entry.to_bytes()) == entry

    def test_canonical_bytes_stable(self):
        entry = PhrEntry("e1", "vitals", "self", "2007-01-01", {"b": 2, "a": 1})
        assert entry.to_bytes() == entry.to_bytes()
        # Key order in the content dict must not matter.
        entry2 = PhrEntry("e1", "vitals", "self", "2007-01-01", {"a": 1, "b": 2})
        assert entry.to_bytes() == entry2.to_bytes()

    def test_nested_content(self):
        entry = PhrEntry(
            "e2", "illness-history", "dr", "2007-01-01",
            {"conditions": ["a", "b"], "meta": {"severity": "high"}},
        )
        assert PhrEntry.from_bytes(entry.to_bytes()).content["meta"]["severity"] == "high"


class TestPolicy:
    def test_grant_revoke_cycle(self):
        policy = DisclosurePolicy("alice")
        policy.grant("bob", "hospital", "labs")
        assert policy.allows("bob", "hospital", "labs")
        assert not policy.allows("bob", "hospital", "illness")
        assert not policy.allows("bob", "clinic", "labs")  # domain matters
        assert policy.revoke("bob", "hospital", "labs")
        assert not policy.allows("bob", "hospital", "labs")
        assert not policy.revoke("bob", "hospital", "labs")  # already gone

    def test_grant_idempotent(self):
        policy = DisclosurePolicy("alice")
        policy.grant("bob", "hospital", "labs")
        policy.grant("bob", "hospital", "labs")
        assert policy.grant_count() == 1

    def test_queries(self):
        policy = DisclosurePolicy("alice")
        policy.grant("bob", "hospital", "labs")
        policy.grant("bob", "hospital", "medication")
        policy.grant("carol", "insurer", "labs")
        assert policy.categories_for("bob", "hospital") == ["labs", "medication"]
        assert policy.requesters_for("labs") == ["bob", "carol"]
        assert len(policy.all_grants()) == 3

    def test_max_sensitivity(self):
        taxonomy = {c.label: c for c in DEFAULT_TAXONOMY}
        policy = DisclosurePolicy("alice")
        policy.grant("bob", "h", "food-statistics")
        grants = policy.all_grants()
        assert DisclosurePolicy.max_sensitivity_granted(grants, taxonomy) == Sensitivity.LOW
        policy.grant("bob", "h", "illness-history")
        grants = policy.all_grants()
        assert (
            DisclosurePolicy.max_sensitivity_granted(grants, taxonomy)
            == Sensitivity.TOP_SECRET
        )
        assert DisclosurePolicy.max_sensitivity_granted([], taxonomy) == -1


class TestStore:
    def test_put_get(self):
        store = EncryptedPhrStore()
        store.put("alice", "labs", "e1", b"ciphertext-bytes")
        record = store.get("alice", "e1")
        assert record.blob == b"ciphertext-bytes"
        assert record.category == "labs"

    def test_missing_entry(self):
        with pytest.raises(EntryNotFoundError):
            EncryptedPhrStore().get("alice", "nope")

    def test_only_bytes_accepted(self):
        with pytest.raises(TypeError):
            EncryptedPhrStore().put("alice", "labs", "e1", "not-bytes")

    def test_filtering_and_accounting(self):
        store = EncryptedPhrStore()
        store.put("alice", "labs", "e1", b"aaaa")
        store.put("alice", "vitals", "e2", b"bb")
        store.put("bob", "labs", "e3", b"c")
        assert [r.entry_id for r in store.entries_for("alice")] == ["e1", "e2"]
        assert [r.entry_id for r in store.entries_for("alice", "labs")] == ["e1"]
        assert store.patients() == ["alice", "bob"]
        assert store.record_count() == 3
        assert store.size_bytes() == 7

    def test_overwrite_and_delete(self):
        store = EncryptedPhrStore()
        store.put("alice", "labs", "e1", b"v1")
        store.put("alice", "labs", "e1", b"v2")
        assert store.get("alice", "e1").blob == b"v2"
        assert store.record_count() == 1
        assert store.delete("alice", "e1")
        assert not store.delete("alice", "e1")


class TestAuditLog:
    def test_append_and_query(self):
        log = AuditLog()
        log.record("upload", actor="alice", subject="e1", category="labs")
        log.record("grant", actor="alice", subject="bob")
        log.record("upload", actor="carol", subject="e2")
        assert len(log) == 3
        assert len(log.events(action="upload")) == 2
        assert len(log.events(actor="alice")) == 2
        assert len(log.events(action="upload", actor="alice")) == 1

    def test_chain_valid(self):
        log = AuditLog()
        for i in range(5):
            log.record("a", actor="x", subject=str(i))
        assert log.verify_chain()

    def test_empty_chain_valid(self):
        assert AuditLog().verify_chain()

    def test_tamper_detected(self):
        from repro.phr.audit import AuditEvent

        log = AuditLog()
        log.record("a", actor="x", subject="1")
        log.record("a", actor="x", subject="2")
        # Tamper: replace the first event (test-only access to internals).
        log._events[0] = AuditEvent(
            sequence=0, action="a", actor="EVE", subject="1", detail={},
            prev_digest="0" * 64,
        )
        assert not log.verify_chain()

    def test_detail_recorded(self):
        log = AuditLog()
        event = log.record("upload", actor="a", subject="s", bytes=123)
        assert event.detail == {"bytes": 123}
