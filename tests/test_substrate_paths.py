"""Cross-path substrate equivalence: every way this library computes a
scalar multiplication or a pairing must agree *bit-identically*.

The fast paths (Jacobian coordinates, Miller-loop precomputation, batch
final exponentiation, an optional gmpy2 bigint backend) are only
admissible because they are exact drop-ins for the affine / pure-python
reference code.  This suite pins that claim three ways:

* replaying ``tests/data/substrate_vectors.json`` — outputs recorded
  from the affine seed code *before* the substrate rewrite — through
  every current path, on every pinned parameter set;
* property checks on fresh DRBG-derived points comparing the paths
  against each other (including subgroup-order and near-order scalars);
* an optional gmpy2 leg (skipped when the library is not importable)
  re-running the vectors with freshly constructed curves whose field
  moduli are mpz-wrapped.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.ec.curve import Point
from repro.ec.jacobian import jac_scalar_mul
from repro.ec.params import available_parameter_sets, get_params
from repro.ec.scalarmult import FixedBaseTable, wnaf_mul, wnaf_mul_affine
from repro.ec.supersingular import SupersingularCurve
from repro.math import backend as int_backend
from repro.math.drbg import HmacDrbg
from repro.pairing.group import PairingGroup
from repro.pairing.miller import MillerPrecomp
from repro.pairing.tate import (
    multi_tate_pairing,
    tate_pairing,
    tate_pairing_affine,
    tate_pairing_batch,
)

VECTOR_FILE = Path(__file__).parent / "data" / "substrate_vectors.json"
VECTORS = json.loads(VECTOR_FILE.read_text())["vectors"]
PARAM_SETS = sorted(VECTORS)


def _coords(point: Point):
    """Canonical comparison form: (x, y) as plain ints, None at infinity."""
    if point.is_infinity():
        return None
    return (int(point.x), int(point.y))


def _gt(element):
    return (int(element.a), int(element.b))


def _fresh_params(name: str) -> SupersingularCurve:
    """A SupersingularCurve built *now* (not from the module cache), so
    its fields wrap their modulus with the currently active int backend."""
    from repro.ec.params import _PINNED_RAW

    p, q, h, gx, gy = _PINNED_RAW[name.upper()]
    return SupersingularCurve(name=name, p=p, q=q, h=h, generator_x=gx, generator_y=gy)


def _scalar_mul_paths(params, point: Point, scalar: int) -> dict:
    """Every scalar-multiplication implementation, keyed by name."""
    table = FixedBaseTable(point, params.q.bit_length())
    jac = jac_scalar_mul(
        int(point.x), int(point.y), scalar, int(params.curve.a.value), int(params.p)
    )
    return {
        "default": _coords(point * scalar),
        "schoolbook": _coords(point.mul_schoolbook(scalar)),
        "wnaf": _coords(wnaf_mul(point, scalar)),
        "wnaf_affine": _coords(wnaf_mul_affine(point, scalar)),
        "fixed_base": _coords(table.mul(scalar % params.q)),
        "jacobian_raw": (
            None if jac is None else (int(jac[0]), int(jac[1]))
        ),
    }


def _assert_all_equal(paths: dict, expected, context: str) -> None:
    for label, got in paths.items():
        assert got == expected, "%s: path %r disagrees (%r != %r)" % (
            context,
            label,
            got,
            expected,
        )


# ------------------------------------------------------------ golden vectors


@pytest.mark.parametrize("name", PARAM_SETS)
def test_vectors_cover_every_pinned_parameter_set(name):
    assert name in available_parameter_sets()


@pytest.mark.parametrize("name", PARAM_SETS)
def test_scalar_mul_vectors_on_every_path(name):
    params = get_params(name)
    for entry in VECTORS[name]["scalar_mul"]:
        point = params.curve.point(int(entry["x"]), int(entry["y"]))
        scalar = int(entry["scalar"])
        expected = (int(entry["rx"]), int(entry["ry"]))
        _assert_all_equal(
            _scalar_mul_paths(params, point, scalar),
            expected,
            "%s scalar_mul" % name,
        )


@pytest.mark.parametrize("name", PARAM_SETS)
def test_pairing_vectors_on_every_path(name):
    params = get_params(name)
    for entry in VECTORS[name]["pairing"]:
        p_point = params.curve.point(int(entry["px"]), int(entry["py"]))
        q_point = params.curve.point(int(entry["qx"]), int(entry["qy"]))
        expected = (int(entry["a"]), int(entry["b"]))
        precomp = MillerPrecomp(params, p_point)
        results = {
            "fast": _gt(tate_pairing(params, p_point, q_point)),
            "affine": _gt(tate_pairing_affine(params, p_point, q_point)),
            "precomp": _gt(tate_pairing(params, p_point, q_point, precomp=precomp)),
            # The pairing is exactly symmetric on these curves, which is
            # what lets the batch path fix either argument.
            "swapped": _gt(tate_pairing(params, q_point, p_point)),
            "batch": _gt(tate_pairing_batch(params, p_point, [q_point])[0]),
            "batch_swapped": _gt(tate_pairing_batch(params, q_point, [p_point])[0]),
        }
        _assert_all_equal(results, expected, "%s pairing" % name)


@pytest.mark.parametrize("name", PARAM_SETS)
def test_multi_pairing_vector(name):
    params = get_params(name)
    rng = HmacDrbg("substrate-golden-v1|" + name)
    points = [params.random_point(rng) for _ in range(3)]
    pairs = [(points[0], points[1]), (points[1], points[2]), (params.generator, points[0])]
    entry = VECTORS[name]["multi_pairing"]
    expected = (int(entry["a"]), int(entry["b"]))
    assert _gt(multi_tate_pairing(params, pairs)) == expected
    # The product of the individual pairings is the same GT element.
    product = params.gt_identity()
    for left, right in pairs:
        product = product * tate_pairing(params, left, right)
    assert _gt(product) == expected


@pytest.mark.parametrize("name", PARAM_SETS)
def test_group_layer_reproduces_the_vectors(name):
    """PairingGroup.pair / pair_batch (the cache layer) stay bit-exact —
    including on repeated calls, where the precomp cache serves hits."""
    group = PairingGroup(get_params(name))
    for entry in VECTORS[name]["pairing"]:
        p_point = group.params.curve.point(int(entry["px"]), int(entry["py"]))
        q_point = group.params.curve.point(int(entry["qx"]), int(entry["qy"]))
        expected = (int(entry["a"]), int(entry["b"]))
        for _ in range(3):  # cold, promoted, cached
            assert _gt(group.pair(p_point, q_point)) == expected
        assert [_gt(e) for e in group.pair_batch(p_point, [q_point, q_point])] == [
            expected,
            expected,
        ]


# -------------------------------------------------------- property checks


@pytest.mark.parametrize("name", PARAM_SETS)
def test_random_scalar_mults_agree_across_paths(name):
    params = get_params(name)
    rng = HmacDrbg("substrate-paths|" + name)
    scalars = [1, 2, 3, params.q - 1] + [
        params.random_scalar(rng) for _ in range(4)
    ]
    for trial in range(2):
        point = params.random_point(rng)
        for scalar in scalars:
            paths = _scalar_mul_paths(params, point, scalar)
            expected = paths.pop("schoolbook")  # the affine reference
            _assert_all_equal(
                paths, expected, "%s trial=%d scalar=%d" % (name, trial, scalar)
            )


@pytest.mark.parametrize("name", PARAM_SETS)
def test_order_scalar_lands_on_infinity_everywhere(name):
    params = get_params(name)
    rng = HmacDrbg("substrate-inf|" + name)
    point = params.random_point(rng)
    assert (point * params.q).is_infinity()
    assert point.mul_schoolbook(params.q).is_infinity()
    assert wnaf_mul(point, params.q).is_infinity()
    assert wnaf_mul_affine(point, params.q).is_infinity()
    assert (
        jac_scalar_mul(
            int(point.x),
            int(point.y),
            params.q,
            int(params.curve.a.value),
            int(params.p),
        )
        is None
    )


@pytest.mark.parametrize("name", PARAM_SETS)
def test_batch_pairing_matches_per_item_calls(name):
    params = get_params(name)
    rng = HmacDrbg("substrate-batch|" + name)
    fixed = params.random_point(rng)
    points = [params.random_point(rng) for _ in range(5)] + [params.curve.infinity()]
    batch = tate_pairing_batch(params, fixed, points)
    for point, combined in zip(points, batch):
        single = tate_pairing(params, fixed, point)
        assert _gt(single) == _gt(combined)


# ----------------------------------------------------------- gmpy2 backend


@pytest.fixture()
def gmpy2_backend():
    pytest.importorskip("gmpy2", reason="gmpy2 backend not installed")
    previous = int_backend.backend_name()
    int_backend.set_int_backend("gmpy2")
    try:
        yield
    finally:
        int_backend.set_int_backend(previous)


@pytest.mark.parametrize("name", PARAM_SETS)
def test_gmpy2_backend_reproduces_the_vectors(gmpy2_backend, name):
    """The mpz-wrapped field path is golden-pinned: same bits as python."""
    params = _fresh_params(name)  # fields must wrap p under the new backend
    assert int_backend.backend_name() == "gmpy2"
    for entry in VECTORS[name]["scalar_mul"]:
        point = params.curve.point(int(entry["x"]), int(entry["y"]))
        expected = (int(entry["rx"]), int(entry["ry"]))
        _assert_all_equal(
            _scalar_mul_paths(params, point, int(entry["scalar"])),
            expected,
            "%s gmpy2 scalar_mul" % name,
        )
    for entry in VECTORS[name]["pairing"]:
        p_point = params.curve.point(int(entry["px"]), int(entry["py"]))
        q_point = params.curve.point(int(entry["qx"]), int(entry["qy"]))
        expected = (int(entry["a"]), int(entry["b"]))
        assert _gt(tate_pairing(params, p_point, q_point)) == expected
        assert _gt(tate_pairing_affine(params, p_point, q_point)) == expected
        assert _gt(tate_pairing_batch(params, p_point, [q_point])[0]) == expected


def test_gmpy2_scheme_end_to_end_matches_golden_scenario(gmpy2_backend):
    """The full scheme over a gmpy2-backed group produces byte-identical
    wire artifacts to the pinned pure-python golden scenario."""
    import hashlib

    from repro.core.scheme import TypeAndIdentityPre
    from repro.ibe.kgc import KgcRegistry
    from repro.serialization.containers import (
        serialize_proxy_key,
        serialize_typed_ciphertext,
    )
    from test_golden_vectors import GOLDEN

    group = PairingGroup(_fresh_params("TOY"))
    rng = HmacDrbg("golden-v1")
    registry = KgcRegistry(group, rng)
    kgc1, _kgc2 = registry.create("KGC1"), registry.create("KGC2")
    scheme = TypeAndIdentityPre(group)
    alice = kgc1.extract("alice")
    message = group.random_gt(rng)
    ciphertext = scheme.encrypt(kgc1.params, alice, message, "labs", rng)
    blob = serialize_typed_ciphertext(group, ciphertext)
    assert hashlib.sha256(blob).hexdigest() == GOLDEN["ciphertext"]
    proxy_key = scheme.pextract(alice, "bob", "labs", _kgc2.params, rng)
    blob = serialize_proxy_key(group, proxy_key)
    assert hashlib.sha256(blob).hexdigest() == GOLDEN["proxy_key"]
