"""Tests for the file-based CLI: the full lifecycle over on-disk envelopes."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def workspace(tmp_path):
    """Two KGC domains plus alice/bob keys, all via the CLI."""
    assert main(["--seed", "cli-test", "setup", "--group", "TOY",
                 "--domain", "KGC1", "--out", str(tmp_path / "kgc1")]) == 0
    assert main(["--seed", "cli-test", "setup", "--group", "TOY",
                 "--domain", "KGC2", "--out", str(tmp_path / "kgc2")]) == 0
    assert main(["extract", "--kgc", str(tmp_path / "kgc1"),
                 "--identity", "alice", "--out", str(tmp_path / "alice.key")]) == 0
    assert main(["extract", "--kgc", str(tmp_path / "kgc2"),
                 "--identity", "bob", "--out", str(tmp_path / "bob.key")]) == 0
    return tmp_path


class TestSetupExtract:
    def test_setup_writes_params_and_master(self, workspace):
        params = json.loads((workspace / "kgc1" / "params.json").read_text())
        assert params["kind"] == "params"
        assert params["group"] == "TOY"
        master = json.loads((workspace / "kgc1" / "master.json").read_text())
        assert master["domain"] == "KGC1"
        assert isinstance(master["alpha"], int)

    def test_extract_writes_key_envelope(self, workspace):
        key = json.loads((workspace / "alice.key").read_text())
        assert key["kind"] == "private-key"

    def test_setup_deterministic_with_seed(self, tmp_path):
        main(["--seed", "s", "setup", "--group", "TOY", "--domain", "D",
              "--out", str(tmp_path / "a")])
        main(["--seed", "s", "setup", "--group", "TOY", "--domain", "D",
              "--out", str(tmp_path / "b")])
        assert (tmp_path / "a" / "params.json").read_text() == (
            tmp_path / "b" / "params.json"
        ).read_text()


class TestLifecycle:
    def test_full_delegation_round_trip(self, workspace):
        message = b"HbA1c: 6.1 mmol/mol -- confidential lab report\n"
        (workspace / "report.txt").write_bytes(message)

        assert main(["--seed", "enc", "encrypt",
                     "--params", str(workspace / "kgc1" / "params.json"),
                     "--key", str(workspace / "alice.key"),
                     "--type", "labs",
                     "--in", str(workspace / "report.txt"),
                     "--out", str(workspace / "report.ct")]) == 0

        # Alice reads her own ciphertext back.
        assert main(["decrypt", "--key", str(workspace / "alice.key"),
                     "--in", str(workspace / "report.ct"),
                     "--out", str(workspace / "self.out")]) == 0
        assert (workspace / "self.out").read_bytes() == message

        assert main(["--seed", "rk", "pextract",
                     "--key", str(workspace / "alice.key"),
                     "--delegatee", "bob",
                     "--delegatee-params", str(workspace / "kgc2" / "params.json"),
                     "--type", "labs",
                     "--out", str(workspace / "labs.rk")]) == 0

        assert main(["preenc", "--rk", str(workspace / "labs.rk"),
                     "--in", str(workspace / "report.ct"),
                     "--out", str(workspace / "report.re")]) == 0

        assert main(["redecrypt", "--key", str(workspace / "bob.key"),
                     "--in", str(workspace / "report.re"),
                     "--out", str(workspace / "bob.out")]) == 0
        assert (workspace / "bob.out").read_bytes() == message

    def test_wrong_type_proxy_key_refused(self, workspace):
        (workspace / "m.txt").write_bytes(b"secret")
        main(["--seed", "e", "encrypt",
              "--params", str(workspace / "kgc1" / "params.json"),
              "--key", str(workspace / "alice.key"), "--type", "illness",
              "--in", str(workspace / "m.txt"), "--out", str(workspace / "m.ct")])
        main(["--seed", "r", "pextract", "--key", str(workspace / "alice.key"),
              "--delegatee", "bob",
              "--delegatee-params", str(workspace / "kgc2" / "params.json"),
              "--type", "food", "--out", str(workspace / "food.rk")])
        # preenc must fail: the key names a different type.
        assert main(["preenc", "--rk", str(workspace / "food.rk"),
                     "--in", str(workspace / "m.ct"),
                     "--out", str(workspace / "m.re")]) == 1

    def test_wrong_key_decrypt_fails_cleanly(self, workspace):
        (workspace / "m.txt").write_bytes(b"secret")
        main(["--seed", "e", "encrypt",
              "--params", str(workspace / "kgc1" / "params.json"),
              "--key", str(workspace / "alice.key"), "--type", "t",
              "--in", str(workspace / "m.txt"), "--out", str(workspace / "m.ct")])
        assert main(["decrypt", "--key", str(workspace / "bob.key"),
                     "--in", str(workspace / "m.ct"),
                     "--out", str(workspace / "x.out")]) == 1


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        assert main(["decrypt", "--key", str(tmp_path / "no.key"),
                     "--in", str(tmp_path / "no.ct"),
                     "--out", str(tmp_path / "x")]) == 1

    def test_corrupt_envelope(self, workspace):
        bad = workspace / "bad.json"
        bad.write_text('{"format": "tipre/v1", "group": "TOY", "payload": "AAAA"}')
        assert main(["preenc", "--rk", str(bad),
                     "--in", str(bad), "--out", str(workspace / "x")]) == 1

    def test_unknown_group_in_setup(self, tmp_path, capsys):
        assert main(["setup", "--group", "NOPE", "--domain", "D",
                     "--out", str(tmp_path / "d")]) == 1
        assert "error" in capsys.readouterr().err


class TestServe:
    def test_serve_prints_gateway_metrics(self, capsys):
        assert main(["serve", "--group", "TOY", "--shards", "2",
                     "--requests", "24", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "gateway: 24 requests over 2 shards" in out
        assert "result_cache hit rate" in out
        assert "shard imbalance" in out

    def test_serve_with_rate_limit_survives_rejections(self, capsys):
        """Regression: rate-limited requests are counted, not a crash."""
        assert main(["serve", "--group", "TOY", "--shards", "2",
                     "--requests", "80", "--rate", "5"]) == 0
        out = capsys.readouterr().out
        assert "rate limited" in out

    def test_serve_connect_drives_a_remote_gateway(self, capsys):
        """--connect replays the workload against a live HTTP server."""
        from repro.core.scheme import TypeAndIdentityPre
        from repro.pairing.group import PairingGroup
        from repro.service.gateway import ReEncryptionGateway
        from repro.service.wire import GatewayHttpServer

        group = PairingGroup.shared("TOY")
        gateway = ReEncryptionGateway(TypeAndIdentityPre(group), shard_count=2)
        with GatewayHttpServer(gateway, group) as server:
            assert main(["serve", "--group", "TOY", "--requests", "16",
                         "--batch", "4", "--connect", server.url]) == 0
        gateway.close()
        out = capsys.readouterr().out
        assert "remote gateway %s: 16 requests" % server.url in out
        assert "served" in out and "plaintexts verified" in out

    def test_serve_http_and_connect_are_exclusive(self, capsys):
        assert main(["serve", "--http", "0",
                     "--connect", "http://127.0.0.1:1"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_serve_with_scheme_drives_a_baseline_backend(self, capsys):
        assert main(["serve", "--group", "TOY", "--scheme", "afgh/v1",
                     "--shards", "2", "--requests", "24", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "afgh/v1" in out
        assert "plaintexts verified" in out

    def test_serve_unknown_scheme_is_a_usage_error(self, capsys):
        assert main(["serve", "--scheme", "nonsense/v0", "--requests", "1"]) == 2
        assert "unknown scheme" in capsys.readouterr().err

    def test_serve_multiple_schemes_require_http(self, capsys):
        """Repeated --scheme flags only make sense for a hosting server."""
        assert main(["serve", "--scheme", "tipre/v1", "--scheme", "afgh/v1",
                     "--requests", "1"]) == 2
        assert "--http" in capsys.readouterr().err

    def test_serve_fleet_usage_errors(self, capsys):
        assert main(["serve", "--fleet", "2", "--requests", "1"]) == 2
        assert "--http" in capsys.readouterr().err
        assert main(["serve", "--http", "0", "--fleet", "2",
                     "--scheme", "tipre/v1", "--scheme", "afgh/v1"]) == 2
        assert "one scheme" in capsys.readouterr().err
        assert main(["serve", "--http", "0", "--fleet", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_state_dir_layout_transitions_never_hide_keys(self, tmp_path):
        """single->multi refuses on root logs; multi->single adopts the
        per-scheme subdirectory instead of opening an empty root fleet."""
        from repro.cli import _state_dirs_for

        # Fresh dir: single keeps the root, multi gets per-scheme subdirs.
        assert _state_dirs_for(None, ["tipre/v1"]) == [None]
        assert _state_dirs_for(tmp_path, ["tipre/v1"]) == [tmp_path]
        assert _state_dirs_for(tmp_path, ["tipre/v1", "afgh/v1"]) == [
            tmp_path / "tipre-v1",
            tmp_path / "afgh-v1",
        ]
        # multi -> single: root empty, the scheme's subdir holds logs.
        (tmp_path / "tipre-v1").mkdir()
        (tmp_path / "tipre-v1" / "shard-00.log").write_text("")
        assert _state_dirs_for(tmp_path, ["tipre/v1"]) == [tmp_path / "tipre-v1"]
        # single -> multi: root logs would be silently skipped; refuse.
        (tmp_path / "shard-00.log").write_text("")
        with pytest.raises(ValueError, match="move"):
            _state_dirs_for(tmp_path, ["tipre/v1", "afgh/v1"])

    def test_serve_http_refuses_ambiguous_state_dir_layout(self, tmp_path, capsys):
        (tmp_path / "shard-00.log").write_text("")
        assert main(["serve", "--http", "0", "--scheme", "tipre/v1",
                     "--scheme", "afgh/v1", "--state-dir", str(tmp_path)]) == 1
        assert "move" in capsys.readouterr().err

    def test_serve_connect_with_pool_size_drives_concurrently_capable_client(
        self, capsys
    ):
        from repro.core.scheme import TypeAndIdentityPre
        from repro.pairing.group import PairingGroup
        from repro.service.gateway import ReEncryptionGateway
        from repro.service.wire import GatewayHttpServer

        group = PairingGroup.shared("TOY")
        gateway = ReEncryptionGateway(TypeAndIdentityPre(group), shard_count=2)
        with GatewayHttpServer(gateway, group) as server:
            assert main(["serve", "--group", "TOY", "--requests", "16",
                         "--pool-size", "4", "--connect", server.url]) == 0
        gateway.close()
        out = capsys.readouterr().out
        assert "plaintexts verified" in out

    def test_serve_connect_with_scheme_drives_a_remote_backend(self, capsys):
        """--connect --scheme: grant -> re-encrypt over the wire -> decrypt
        against a server that holds no party secrets for that scheme."""
        from repro.core.api import create_backend
        from repro.pairing.group import PairingGroup
        from repro.service.gateway import ReEncryptionGateway
        from repro.service.wire import GatewayHttpServer

        group = PairingGroup.shared("TOY")
        gateway = ReEncryptionGateway(
            create_backend("green-ateniese/v1", group), shard_count=2
        )
        with GatewayHttpServer(gateway) as server:
            assert main(["serve", "--group", "TOY", "--scheme", "green-ateniese/v1",
                         "--requests", "16", "--batch", "4",
                         "--connect", server.url]) == 0
        gateway.close()
        out = capsys.readouterr().out
        assert "remote gateway %s: 16 requests" % server.url in out
        assert "green-ateniese/v1" in out and "plaintexts verified" in out


class TestSchemes:
    def test_schemes_lists_the_registry_with_capabilities(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for scheme_id in ("tipre/v1", "afgh/v1", "green-ateniese/v1",
                          "bbs/v1", "dodis-ivan/v1", "matsuo/v1"):
            assert scheme_id in out
        assert "det-reenc" in out and "typed" in out
