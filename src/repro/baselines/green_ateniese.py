"""The Green--Ateniese identity-based PRE (ACNS'07), scheme IBP1 (CPA).

This is the closest prior work to the paper: an IBE-to-IBE proxy
re-encryption over Boneh--Franklin where the re-encryption key blinds the
delegator's private key with a hashed random GT element that travels to
the delegatee encrypted under her identity:

    rk_{id1 -> id2} = ( sk_id1^{-1} * H3(X),  Encrypt(X, id2) ).

The crucial *difference* from the paper's scheme — and the reason the
paper exists — is that the re-encryption key works for **all** of the
delegator's ciphertexts: there is no type exponent, so one corrupted proxy
key exposes every message.  Experiment E7 demonstrates this contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.curve import Point
from repro.ibe.boneh_franklin import BonehFranklinIbe
from repro.ibe.keys import IbeCiphertext, IbeParams, IbePrivateKey
from repro.math.drbg import RandomSource, system_random
from repro.math.fields import Fp2Element
from repro.pairing.group import PairingGroup

__all__ = ["GreenAtenieseIbp1", "GaProxyKey", "GaReEncryptedCiphertext"]


@dataclass(frozen=True)
class GaProxyKey:
    """``(sk_id1^{-1} * H3(X), Encrypt2(X, id2))`` — valid for *all* types."""

    delegator_domain: str
    delegator: str
    delegatee_domain: str
    delegatee: str
    rk_point: Point
    encrypted_blind: IbeCiphertext


@dataclass(frozen=True)
class GaReEncryptedCiphertext:
    """``(c1, c2 * e(c1, rk), Encrypt2(X, id2))``."""

    delegatee_domain: str
    delegatee: str
    c1: Point
    c2: Fp2Element
    encrypted_blind: IbeCiphertext


class GreenAtenieseIbp1:
    """Green--Ateniese IBP1 over the multiplicative Boneh--Franklin variant."""

    def __init__(self, group: PairingGroup):
        self.group = group

    def _blind_point(self, blind: Fp2Element) -> Point:
        """``H3: GT -> G1`` (domain-separated from the paper's H1)."""
        return self.group.hash_to_g1(b"ga-ibp1-blind|" + self.group.serialize_gt(blind))

    def encrypt(
        self,
        params: IbeParams,
        message: Fp2Element,
        identity: str,
        rng: RandomSource | None = None,
    ) -> IbeCiphertext:
        """Plain Boneh--Franklin encryption — anyone can encrypt to id1."""
        return BonehFranklinIbe(self.group, params.domain).encrypt(params, message, identity, rng)

    def decrypt(self, ciphertext: IbeCiphertext, key: IbePrivateKey) -> Fp2Element:
        return BonehFranklinIbe(self.group, key.domain).decrypt(ciphertext, key)

    def rkgen(
        self,
        delegator_key: IbePrivateKey,
        delegatee_identity: str,
        delegatee_params: IbeParams,
        rng: RandomSource | None = None,
    ) -> GaProxyKey:
        """Non-interactive re-encryption key generation by the delegator."""
        rng = rng or system_random()
        blind = self.group.random_gt(rng)
        rk_point = self.group.g1_add(
            self.group.g1_neg(delegator_key.point), self._blind_point(blind)
        )
        encrypted_blind = BonehFranklinIbe(self.group, delegatee_params.domain).encrypt(
            delegatee_params, blind, delegatee_identity, rng
        )
        return GaProxyKey(
            delegator_domain=delegator_key.domain,
            delegator=delegator_key.identity,
            delegatee_domain=delegatee_params.domain,
            delegatee=delegatee_identity,
            rk_point=rk_point,
            encrypted_blind=encrypted_blind,
        )

    def reencrypt(self, ciphertext: IbeCiphertext, key: GaProxyKey) -> GaReEncryptedCiphertext:
        """Works on *every* ciphertext of the delegator — no type check possible."""
        if ciphertext.domain != key.delegator_domain or ciphertext.identity != key.delegator:
            raise ValueError("proxy key does not match the ciphertext's delegator")
        c2 = self.group.gt_mul(ciphertext.c2, self.group.pair(ciphertext.c1, key.rk_point))
        return GaReEncryptedCiphertext(
            delegatee_domain=key.delegatee_domain,
            delegatee=key.delegatee,
            c1=ciphertext.c1,
            c2=c2,
            encrypted_blind=key.encrypted_blind,
        )

    def decrypt_reencrypted(
        self, ciphertext: GaReEncryptedCiphertext, delegatee_key: IbePrivateKey
    ) -> Fp2Element:
        if (
            ciphertext.delegatee_domain != delegatee_key.domain
            or ciphertext.delegatee != delegatee_key.identity
        ):
            raise ValueError("re-encrypted ciphertext was not produced for this key")
        blind = BonehFranklinIbe(self.group, delegatee_key.domain).decrypt(
            ciphertext.encrypted_blind, delegatee_key
        )
        mask = self.group.pair(ciphertext.c1, self._blind_point(blind))
        return self.group.gt_div(ciphertext.c2, mask)
