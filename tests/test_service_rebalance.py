"""Live fleet resizing: zero lost delegations, minimal key movement.

The contract under test: after ``resize(m)`` every delegation installed
before it still re-encrypts (and decrypts to the original plaintext),
the number of migrated keys equals the routers' ownership diff exactly,
and with a state dir the migrated layout survives a restart — even a
restart under a *different* shard count.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.proxy import ProxyKeyTable
from repro.core.scheme import TypeAndIdentityPre
from repro.ibe.kgc import KgcRegistry
from repro.math.drbg import HmacDrbg
from repro.service.gateway import (
    GrantRequest,
    InvalidRequestError,
    ReEncryptionGateway,
    ReEncryptRequest,
)
from repro.service.router import ShardRouter

PATIENTS = ("pat-a", "pat-b", "pat-c")
DELEGATEES = ("bob", "dave")
TYPES = ("labs", "meds")


@pytest.fixture(scope="module")
def universe(group):
    """12 proxy keys plus one (ciphertext, plaintext) pair per route key."""
    rng = HmacDrbg("rebalance-universe")
    registry = KgcRegistry(group, rng)
    kgc1 = registry.create("KGC1")
    kgc2 = registry.create("KGC2")
    scheme = TypeAndIdentityPre(group)
    proxy_keys = []
    ciphertexts = {}  # (patient, type) -> (ciphertext, message)
    for patient in PATIENTS:
        patient_key = kgc1.extract(patient)
        for type_label in TYPES:
            message = group.random_gt(rng)
            ciphertexts[(patient, type_label)] = (
                scheme.encrypt(kgc1.params, patient_key, message, type_label, rng),
                message,
            )
            for delegatee in DELEGATEES:
                proxy_keys.append(
                    scheme.pextract(patient_key, delegatee, type_label, kgc2.params, rng)
                )
    delegatee_keys = {name: kgc2.extract(name) for name in DELEGATEES}
    return scheme, proxy_keys, ciphertexts, delegatee_keys


def _granted_gateway(scheme, proxy_keys, shard_count, **kwargs):
    gateway = ReEncryptionGateway(scheme, shard_count=shard_count, **kwargs)
    for key in proxy_keys:
        gateway.grant(GrantRequest(tenant=key.delegator, proxy_key=key))
    return gateway


def _expected_moves(proxy_keys, old_count, new_count):
    """Keys whose route triple changes owner between the two fleets."""
    old = ShardRouter(["shard-%02d" % i for i in range(old_count)])
    new = ShardRouter(["shard-%02d" % i for i in range(new_count)])
    diff = old.ownership_diff(
        new, {(k.delegator_domain, k.delegator, k.type_label) for k in proxy_keys}
    )
    return sum(
        1
        for key in proxy_keys
        if (key.delegator_domain, key.delegator, key.type_label) in diff
    )


def _installed_indices(gateway):
    indices = []
    for name in gateway.shard_names:
        indices.extend(
            ProxyKeyTable.index_of(key) for key in gateway.shard_named(name).table
        )
    return indices


class TestResizeCorrectness:
    @pytest.mark.parametrize("old_count,new_count", [(1, 4), (4, 2), (3, 5)])
    def test_every_delegation_survives_and_decrypts(self, universe, old_count, new_count):
        scheme, proxy_keys, ciphertexts, delegatee_keys = universe
        gateway = _granted_gateway(scheme, proxy_keys, old_count)
        report = gateway.resize(new_count)
        assert report.new_shard_count == new_count
        assert gateway.key_count() == len(proxy_keys)
        assert len(gateway.shard_names) == new_count
        for (patient, type_label), (ciphertext, message) in ciphertexts.items():
            for delegatee in DELEGATEES:
                response = gateway.reencrypt(
                    ReEncryptRequest(
                        tenant=patient,
                        ciphertext=ciphertext,
                        delegatee_domain="KGC2",
                        delegatee=delegatee,
                    )
                )
                recovered = scheme.decrypt_reencrypted(
                    response.ciphertext, delegatee_keys[delegatee]
                )
                assert recovered == message

    @pytest.mark.parametrize("old_count,new_count", [(2, 6), (5, 3), (4, 4)])
    def test_migrated_count_matches_ownership_diff(self, universe, old_count, new_count):
        scheme, proxy_keys, _, _ = universe
        gateway = _granted_gateway(scheme, proxy_keys, old_count)
        report = gateway.resize(new_count)
        assert report.keys_moved == _expected_moves(proxy_keys, old_count, new_count)

    @settings(max_examples=15, deadline=None)
    @given(
        old_count=st.integers(min_value=1, max_value=6),
        new_count=st.integers(min_value=1, max_value=6),
    )
    def test_random_fleet_sizes_keep_every_key_exactly_once(
        self, universe, old_count, new_count
    ):
        scheme, proxy_keys, _, _ = universe
        gateway = _granted_gateway(scheme, proxy_keys, old_count)
        report = gateway.resize(new_count)
        indices = _installed_indices(gateway)
        # No key lost, no key duplicated, migration count matches the plan.
        assert len(indices) == len(proxy_keys)
        assert set(indices) == {ProxyKeyTable.index_of(key) for key in proxy_keys}
        assert report.keys_moved == _expected_moves(proxy_keys, old_count, new_count)

    def test_resize_to_invalid_count_is_typed(self, universe):
        scheme, proxy_keys, _, _ = universe
        gateway = _granted_gateway(scheme, proxy_keys, 2)
        with pytest.raises(InvalidRequestError):
            gateway.resize(0)


class TestResizeObservability:
    def test_resize_emits_metrics_and_audit(self, universe):
        scheme, proxy_keys, _, _ = universe
        gateway = _granted_gateway(scheme, proxy_keys, 2)
        report = gateway.resize(5)
        snapshot = gateway.snapshot()
        assert snapshot.resizes == 1
        assert snapshot.keys_migrated == report.keys_moved
        resize_events = [event for event in gateway.audit if event.action == "resize"]
        assert len(resize_events) == 1
        assert resize_events[0].outcome == "ok"
        assert "moved=%d" % report.keys_moved in resize_events[0].detail
        # The resize itself is a served, latency-sampled operation.
        assert snapshot.latency["resize"].count == 1

    def test_resize_report_names_fleet_changes(self, universe):
        scheme, proxy_keys, _, _ = universe
        gateway = _granted_gateway(scheme, proxy_keys, 3)
        grown = gateway.resize(5)
        assert grown.shards_added == ("shard-03", "shard-04")
        assert grown.shards_removed == ()
        shrunk = gateway.resize(2)
        assert shrunk.shards_added == ()
        assert shrunk.shards_removed == ("shard-02", "shard-03", "shard-04")


class TestResizeDurability:
    def test_resized_layout_survives_restart(self, universe, tmp_path):
        scheme, proxy_keys, ciphertexts, delegatee_keys = universe
        state_dir = tmp_path / "state"
        gateway = _granted_gateway(scheme, proxy_keys, 4, state_dir=state_dir)
        gateway.resize(2)
        gateway.close()
        # Retired shards' logs are gone; the survivors hold everything.
        assert sorted(p.stem for p in state_dir.glob("*.log")) == ["shard-00", "shard-01"]

        reloaded = ReEncryptionGateway(scheme, shard_count=2, state_dir=state_dir)
        assert reloaded.key_count() == len(proxy_keys)
        (patient, type_label), (ciphertext, message) = next(iter(ciphertexts.items()))
        response = reloaded.reencrypt(
            ReEncryptRequest(
                tenant=patient,
                ciphertext=ciphertext,
                delegatee_domain="KGC2",
                delegatee=DELEGATEES[0],
            )
        )
        assert (
            scheme.decrypt_reencrypted(response.ciphertext, delegatee_keys[DELEGATEES[0]])
            == message
        )
        reloaded.close()

    def test_restart_under_a_different_fleet_size_rehomes_keys(self, universe, tmp_path):
        """Opening a 4-shard state dir with 2 shards adopts and re-homes."""
        scheme, proxy_keys, _, _ = universe
        state_dir = tmp_path / "state"
        gateway = _granted_gateway(scheme, proxy_keys, 4, state_dir=state_dir)
        gateway.close()

        reloaded = ReEncryptionGateway(scheme, shard_count=2, state_dir=state_dir)
        assert reloaded.key_count() == len(proxy_keys)
        indices = _installed_indices(reloaded)
        assert set(indices) == {ProxyKeyTable.index_of(key) for key in proxy_keys}
        assert len(indices) == len(proxy_keys)
        # Orphan logs were absorbed and removed.
        assert sorted(p.stem for p in state_dir.glob("*.log")) == ["shard-00", "shard-01"]
        reloaded.close()
