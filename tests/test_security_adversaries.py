"""Empirical-advantage tests: every in-model adversary stays near 1/2.

These are the unit-test-sized versions of experiment E6 (the benchmark
runs more trials).  With 40 trials, a strategy with true advantage 0 wins
between ~35% and ~65% of the time except with tiny probability; a broken
scheme would push a distinguishing strategy to ~100% immediately.
"""

import pytest

from repro.math.drbg import HmacDrbg
from repro.security.adversaries import (
    ALL_DR_CPA_ADVERSARIES,
    ColludingDelegateeAdversary,
    RandomGuessAdversary,
    TypeMixingAdversary,
)
from repro.security.games import IndIdDrCpaGame

TRIALS = 40
WIN_RATE_SLACK = 0.28  # 40 trials: P(|rate - 0.5| > 0.28) < 0.1% for a fair coin


def run_adversary(adversary, group, trials: int, seed: str) -> float:
    root = HmacDrbg(seed)
    wins = 0
    for i in range(trials):
        rng = root.fork("trial-%d" % i)
        game = IndIdDrCpaGame(group, rng)
        wins += adversary(game, group, rng).won
    return wins / trials


@pytest.mark.parametrize("adversary", ALL_DR_CPA_ADVERSARIES, ids=lambda a: a.name)
def test_adversary_advantage_negligible(adversary, group):
    rate = run_adversary(adversary, group, TRIALS, "advantage-%s" % adversary.name)
    assert abs(rate - 0.5) <= WIN_RATE_SLACK, (
        "%s wins at rate %.2f — scheme broken?" % (adversary.name, rate)
    )


def test_adversaries_never_issue_illegal_queries(group):
    """All strategies must stay inside the threat model by construction."""
    root = HmacDrbg("legality")
    for adversary in ALL_DR_CPA_ADVERSARIES:
        rng = root.fork(adversary.name)
        game = IndIdDrCpaGame(group, rng)
        adversary(game, group, rng)  # IllegalQueryError would fail the test


def test_type_mixing_recovers_garbage_not_plaintext(group):
    """The type-mixing attack yields a value unequal to both candidates."""
    rng = HmacDrbg("mix-detail")
    game = IndIdDrCpaGame(group, rng)
    adversary = TypeMixingAdversary()
    result = adversary(game, group, rng)
    # If the mix ever produced a real plaintext, the win would be forced;
    # the strategy falling back to a coin flip is visible in the result.
    assert result.guess in (0, 1)


def test_omniscient_upper_bound(group):
    """A hypothetical adversary holding the delegator key wins always.

    This validates the harness itself: the game is winnable when the
    constraint the scheme relies on is removed.
    """
    root = HmacDrbg("omniscient")
    wins = 0
    trials = 12
    for i in range(trials):
        rng = root.fork("t%d" % i)
        game = IndIdDrCpaGame(group, rng)
        # Cheat deliberately *outside* the oracle interface: pull the key
        # from the challenger's KGC directly (test-only access).
        alice_key = game._kgc1.extract("alice")
        m0, m1 = group.random_gt(rng), group.random_gt(rng)
        challenge = game.challenge(m0, m1, "t", "alice")
        recovered = game.scheme.decrypt(challenge, alice_key)
        wins += game.finish(0 if recovered == m0 else 1).won
    assert wins == trials
