"""ElGamal encryption over the pairing group G1.

This is the substrate for the discrete-log baselines (Blaze--Bleumer--Strauss
and Dodis--Ivan).  Messages are G1 points; the scheme is the textbook one:
``pk = g^a``, ``Enc(m) = (g^r, m * pk^r)``, ``Dec(c) = c2 / c1^a``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.curve import Point
from repro.math.drbg import RandomSource, system_random
from repro.pairing.group import PairingGroup

__all__ = ["ElGamal", "ElGamalKeyPair", "ElGamalCiphertext"]


@dataclass(frozen=True)
class ElGamalKeyPair:
    """An ElGamal key pair over G1."""

    secret: int
    public: Point


@dataclass(frozen=True)
class ElGamalCiphertext:
    """``(c1, c2) = (g^r, m * pk^r)`` with both components in G1."""

    c1: Point
    c2: Point


class ElGamal:
    """Textbook ElGamal over the G1 subgroup of a pairing group."""

    def __init__(self, group: PairingGroup):
        self.group = group

    def keygen(self, rng: RandomSource | None = None) -> ElGamalKeyPair:
        rng = rng or system_random()
        secret = self.group.random_scalar(rng)
        return ElGamalKeyPair(secret=secret, public=self.group.g1_mul(self.group.generator, secret))

    def random_message(self, rng: RandomSource | None = None) -> Point:
        """A uniform G1 plaintext."""
        return self.group.random_g1(rng or system_random())

    def encrypt(
        self, public: Point, message: Point, rng: RandomSource | None = None
    ) -> ElGamalCiphertext:
        rng = rng or system_random()
        r = self.group.random_scalar(rng)
        c1 = self.group.g1_mul(self.group.generator, r)
        c2 = self.group.g1_add(message, self.group.g1_mul(public, r))
        return ElGamalCiphertext(c1=c1, c2=c2)

    def decrypt(self, ciphertext: ElGamalCiphertext, secret: int) -> Point:
        shared = self.group.g1_mul(ciphertext.c1, secret)
        return self.group.g1_add(ciphertext.c2, self.group.g1_neg(shared))
