"""Elliptic-curve substrate: curves, points, and type-A pairing parameters."""

from repro.ec.curve import EllipticCurve, Point
from repro.ec.jacobian import batch_normalize, jac_scalar_mul
from repro.ec.scalarmult import FixedBaseTable, wnaf_mul, wnaf_mul_affine
from repro.ec.params import available_parameter_sets, generate_parameters, get_params
from repro.ec.supersingular import SupersingularCurve

__all__ = [
    "EllipticCurve",
    "Point",
    "FixedBaseTable",
    "wnaf_mul",
    "wnaf_mul_affine",
    "batch_normalize",
    "jac_scalar_mul",
    "SupersingularCurve",
    "get_params",
    "generate_parameters",
    "available_parameter_sets",
]
