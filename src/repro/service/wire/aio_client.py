"""The framed multiplexed client: many in-flight requests, one socket.

:class:`MuxRemoteGateway` speaks the mux framing of
:class:`~repro.service.wire.aio_server.AsyncGatewayServer` — length-
prefixed JSON frames with an integer request id, responses correlated
by id in whatever order the server finishes them.  Where the pooled
:class:`~repro.service.wire.client.RemoteGateway` needs one socket per
concurrent request, the mux client holds exactly ONE connection and
interleaves every caller's streams on it, HTTP/2-style: 512 threads
cost 512 sockets on the pooled client and one here.

It *is* a :class:`RemoteGateway` — the subclass replaces only the
transport seam (``_raw_request``) plus connection management, so every
typed operation, the scheme negotiation, request signing, tracing and
taxonomy-error decoding are literally the same code.  A mux response
body is byte-identical to what the threaded stack returns (the server
frames the same codec output), which the conformance suite asserts.

:func:`connect_gateway` is the URL-dispatching factory the CLI, driver
and fleet use: ``mux://`` / ``muxs://`` builds a mux client, ``http://``
/ ``https://`` the pooled one — ``serve --async`` prints a ``mux://``
banner and every consumer auto-negotiates from the URL alone.
"""

from __future__ import annotations

import socket
import threading
import urllib.parse

from repro.core.api import PreBackend
from repro.pairing.group import PairingGroup
from repro.service.auth.signing import AUTH_HEADER
from repro.service.auth.tls import client_context
from repro.service.telemetry import TRACE_HEADER, TraceContext
from repro.service.wire.client import (
    _RETRYABLE,
    RemoteGateway,
    WireTransportError,
)
from repro.service.wire.codec import (
    FRAME_HEADER_LEN,
    MUX_PROTOCOL,
    FrameProtocolError,
    decode_frame_payload,
    encode_frame,
    frame_length,
    mux_hello,
    mux_request,
)

__all__ = ["MuxRemoteGateway", "connect_gateway"]


def _recv_exactly(sock, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("mux peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _Waiter:
    """One in-flight stream: its wake event and eventual outcome."""

    __slots__ = ("event", "document", "error")

    def __init__(self):
        self.event = threading.Event()
        self.document: dict | None = None
        self.error: Exception | None = None


class MuxRemoteGateway(RemoteGateway):
    """A typed gateway client multiplexing every request over one socket.

    ``url`` is ``mux://host:port`` (or ``muxs://`` for TLS; ``tls_ca``
    pins the CA bundle exactly as on the pooled client).  Everything
    else — ``context``, ``timeout``, ``negotiate``, ``trace_requests``,
    ``tenant``/``secret`` — means what it means on
    :class:`RemoteGateway`; ``pool_size`` does not exist here because
    one connection carries every stream.

    Thread-safe like the base client: callers block only on their own
    stream's response (plus a brief send lock), so slow requests never
    head-of-line-block fast ones.  A transport failure wakes every
    in-flight waiter with the error, reconnects lazily, and retries
    replayable requests once — the same drop-retry contract as the
    pooled client, which the server's idempotency window backs for
    revoke/resize.
    """

    def __init__(
        self,
        url: str,
        context: PairingGroup | PreBackend,
        timeout: float = 30.0,
        negotiate: bool = True,
        trace_requests: bool | float = True,
        tenant: str | None = None,
        secret: str | None = None,
        tls_ca: str | None = None,
    ):
        parts = urllib.parse.urlsplit(url.rstrip("/"))
        if parts.scheme not in ("mux", "muxs") or not parts.netloc:
            raise ValueError(
                "mux gateway url must be mux(s)://host[:port], got %r" % url
            )
        if parts.port is None:
            raise ValueError("mux gateway url must carry an explicit port")
        http_scheme = "https" if parts.scheme == "muxs" else "http"
        # The base class owns negotiation, signing, tracing and the typed
        # API; it validates an http(s) spelling of the same endpoint (and
        # builds the TLS context for muxs). Its connection pool goes
        # unused — this subclass owns the transport seam.
        super().__init__(
            "%s://%s" % (http_scheme, parts.netloc),
            context,
            timeout=timeout,
            negotiate=negotiate,
            pool_size=1,
            trace_requests=trace_requests,
            tenant=tenant,
            secret=secret,
            tls_ca=tls_ca,
        )
        self.url = "%s://%s" % (parts.scheme, parts.netloc)
        self._mux_host = parts.hostname or "127.0.0.1"
        self._mux_port = parts.port
        if parts.scheme == "muxs" and self._tls_context is None:
            self._tls_context = client_context(tls_ca)
        self._connect_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._conn_gen = 0
        self._next_id = 0
        self._waiters: dict[int, _Waiter] = {}
        self._reader: threading.Thread | None = None
        self.server_hello: dict | None = None
        # Mux gauges: one socket, many streams.
        self.streams_in_flight = 0
        self.peak_streams = 0

    # ------------------------------------------------------------ transport

    def _ensure_connected(self) -> tuple[socket.socket, int]:
        with self._connect_lock:
            if self._sock is not None:
                return self._sock, self._conn_gen
            sock = socket.create_connection(
                (self._mux_host, self._mux_port), timeout=self.timeout
            )
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                if self._tls_context is not None:
                    sock = self._tls_context.wrap_socket(
                        sock, server_hostname=self._mux_host
                    )
                sock.sendall(encode_frame(mux_hello()))
                header = _recv_exactly(sock, FRAME_HEADER_LEN)
                hello = decode_frame_payload(
                    _recv_exactly(sock, frame_length(header))
                )
                if hello.get("mux") != MUX_PROTOCOL:
                    raise WireTransportError(
                        "%s answered with %r, expected a %s hello"
                        % (self.url, hello.get("mux"), MUX_PROTOCOL)
                    )
            except BaseException:
                sock.close()
                raise
            # The handshake ran under the dial timeout; the reader thread
            # blocks indefinitely (per-stream timeouts are the waiters').
            sock.settimeout(None)
            self.server_hello = hello
            with self._state_lock:
                self._conn_gen += 1
                generation = self._conn_gen
                self._sock = sock
                self.connections_opened += 1
                if self.connections_opened - self.connections_closed > self.peak_connections:
                    self.peak_connections = self.connections_opened - self.connections_closed
            self._reader = threading.Thread(
                target=self._reader_loop,
                args=(sock, generation),
                name="mux-reader-%d" % generation,
                daemon=True,
            )
            self._reader.start()
            return sock, generation

    def _reader_loop(self, sock: socket.socket, generation: int) -> None:
        """Demultiplex response frames to their waiters until the socket dies."""
        try:
            while True:
                header = _recv_exactly(sock, FRAME_HEADER_LEN)
                payload = _recv_exactly(sock, frame_length(header))
                document = decode_frame_payload(payload)
                if document.get("type") != "response":
                    continue  # future protocol extensions (pings) are ignorable
                request_id = document.get("id")
                with self._state_lock:
                    waiter = self._waiters.pop(request_id, None)
                # A missing waiter is a stream whose caller timed out and
                # moved on; the late response is dropped on the floor.
                if waiter is not None:
                    waiter.document = document
                    waiter.event.set()
        except (FrameProtocolError, ConnectionError, OSError, ValueError) as error:
            self._fail_connection(generation, error)

    def _fail_connection(self, generation: int, error: Exception) -> None:
        """Tear one connection generation down, waking its waiters with the error."""
        with self._state_lock:
            if generation != self._conn_gen or self._sock is None:
                return  # an older generation already replaced
            sock, self._sock = self._sock, None
            self.connections_closed += 1
            orphans = list(self._waiters.values())
            self._waiters.clear()
        try:
            sock.close()
        except OSError:
            pass
        for waiter in orphans:
            if waiter.error is None:
                waiter.error = ConnectionError("mux connection failed: %s" % error)
            waiter.event.set()

    def _register_waiter(self, generation: int) -> tuple[int, _Waiter] | None:
        with self._state_lock:
            if generation != self._conn_gen or self._sock is None:
                return None  # connection died between checkout and send
            self._next_id += 1
            waiter = _Waiter()
            self._waiters[self._next_id] = waiter
            self.streams_in_flight = len(self._waiters)
            if self.streams_in_flight > self.peak_streams:
                self.peak_streams = self.streams_in_flight
            return self._next_id, waiter

    def _drop_waiter(self, request_id: int) -> None:
        with self._state_lock:
            self._waiters.pop(request_id, None)
            self.streams_in_flight = len(self._waiters)

    def _raw_request(
        self,
        method: str,
        path: str,
        data: bytes | None,
        replayable: bool = True,
        trace: TraceContext | None = None,
    ) -> tuple[int, bytes]:
        """One framed exchange on the shared connection, status + body.

        The same contract as the pooled client's transport seam: sign per
        attempt, retry replayable requests exactly once after a transport
        failure (reconnecting lazily), fail fast otherwise.
        """
        headers: dict[str, str] = {}
        if trace is not None:
            headers[TRACE_HEADER] = trace.to_header()
        body_text = data.decode("utf-8") if data is not None else None
        last_error: Exception | None = None
        for _attempt in (0, 1) if replayable else (0,):
            if self._signer is not None:
                # Each attempt is its own signed request — a fresh nonce
                # keeps the server's replay window from rejecting the
                # legitimate retry of a request whose response was lost.
                headers[AUTH_HEADER] = self._signer.header(method, path, data or b"")
            try:
                sock, generation = self._ensure_connected()
            except (*_RETRYABLE, FrameProtocolError, WireTransportError) as error:
                last_error = error
                continue
            registered = self._register_waiter(generation)
            if registered is None:
                last_error = ConnectionError("mux connection lost before send")
                continue
            request_id, waiter = registered
            frame = encode_frame(
                mux_request(request_id, method, path, body_text, headers or None)
            )
            try:
                with self._send_lock:
                    sock.sendall(frame)
            except _RETRYABLE as error:
                self._drop_waiter(request_id)
                self._fail_connection(generation, error)
                last_error = error
                continue
            if not waiter.event.wait(self.timeout):
                # Only this stream timed out; the connection (and every
                # other in-flight stream) stays up.  A late response finds
                # no waiter and is discarded by the reader.
                self._drop_waiter(request_id)
                last_error = TimeoutError(
                    "no response to stream %d within %.1fs" % (request_id, self.timeout)
                )
                continue
            self._drop_waiter(request_id)
            if waiter.error is not None:
                last_error = waiter.error
                continue
            document = waiter.document or {}
            status = document.get("status")
            body = document.get("body")
            if not isinstance(status, int) or not isinstance(body, str):
                last_error = FrameProtocolError("response frame lacks status/body")
                self._fail_connection(generation, last_error)
                continue
            self.last_trace_echo = document.get("trace")
            return status, body.encode("utf-8")
        raise WireTransportError(
            "cannot reach %s%s: %s" % (self.url, path, last_error)
        ) from last_error

    def close(self) -> None:
        """Close the multiplexed connection; in-flight callers see the error."""
        self._fail_connection(self._conn_gen, ConnectionError("client closed"))
        reader = self._reader
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=2.0)


def connect_gateway(url: str, context: PairingGroup | PreBackend, **kwargs):
    """Build the right typed client for a gateway URL.

    ``mux://`` and ``muxs://`` dial the async server's framed transport
    (:class:`MuxRemoteGateway`); ``http://`` and ``https://`` the pooled
    keep-alive client (:class:`RemoteGateway`).  ``pool_size`` is
    meaningful only for the pooled client and silently dropped for mux,
    so callers can pass one kwargs dict for either transport.
    """
    scheme = urllib.parse.urlsplit(url).scheme
    if scheme in ("mux", "muxs"):
        kwargs.pop("pool_size", None)
        return MuxRemoteGateway(url, context, **kwargs)
    return RemoteGateway(url, context, **kwargs)
