"""Group-law tests for the elliptic-curve layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.curve import EllipticCurve, Point
from repro.ec.params import get_params
from repro.math.fields import PrimeField

PARAMS = get_params("TOY")
CURVE = PARAMS.curve
G = PARAMS.generator
Q = PARAMS.q

scalars = st.integers(min_value=0, max_value=Q - 1)


class TestCurveConstruction:
    def test_singular_rejected(self):
        field = PrimeField(1000003)
        with pytest.raises(ValueError):
            EllipticCurve(field, field(0), field(0))  # y^2 = x^3 is singular

    def test_point_validation(self):
        with pytest.raises(ValueError):
            CURVE.point(1, 1)  # almost surely not on the curve

    def test_contains_infinity(self):
        assert CURVE.contains(CURVE.infinity())

    def test_generator_on_curve(self):
        assert CURVE.contains(G)

    def test_equality(self):
        field = PrimeField(1000003)
        c1 = EllipticCurve(field, field(1), field(0))
        c2 = EllipticCurve(field, field(1), field(0))
        c3 = EllipticCurve(field, field(2), field(0))
        assert c1 == c2 and c1 != c3

    def test_lift_x_roundtrip(self):
        lifted = CURVE.lift_x(G.x, y_parity=int(G.y) & 1)
        assert lifted == G

    def test_lift_x_other_parity(self):
        lifted = CURVE.lift_x(G.x, y_parity=(int(G.y) & 1) ^ 1)
        assert lifted == -G

    def test_lift_x_non_residue_returns_none(self):
        # Scan for an x with no point; on a random curve about half qualify.
        field = CURVE.field
        for x in range(2, 200):
            candidate = CURVE.lift_x(field(x))
            if candidate is None:
                return
        pytest.fail("no non-liftable x found in range (vanishingly unlikely)")


class TestGroupLaw:
    def test_identity_element(self):
        infinity = CURVE.infinity()
        assert G + infinity == G
        assert infinity + G == G
        assert infinity + infinity == infinity

    def test_inverse(self):
        assert G + (-G) == CURVE.infinity()
        assert -CURVE.infinity() == CURVE.infinity()

    def test_doubling_matches_addition(self):
        assert G.double() == G * 2
        assert G + G == G * 2

    def test_two_torsion_doubles_to_infinity(self):
        # y = 0 point: x^3 + x = 0 at x = 0 on y^2 = x^3 + x.
        two_torsion = CURVE.point(0, 0)
        assert two_torsion.double().is_infinity()

    @given(scalars, scalars)
    def test_scalar_mul_distributes(self, a, b):
        assert G * a + G * b == G * ((a + b) % Q)

    @given(scalars, scalars)
    def test_scalar_mul_associates(self, a, b):
        assert (G * a) * b == G * (a * b % Q)

    @given(scalars)
    def test_negative_scalar(self, a):
        assert G * -a == -(G * a)

    def test_order(self):
        assert (G * Q).is_infinity()
        assert not (G * (Q - 1)).is_infinity()

    @given(scalars, scalars, scalars)
    def test_addition_associative(self, a, b, c):
        pa, pb, pc = G * a, G * b, G * c
        assert (pa + pb) + pc == pa + (pb + pc)

    @given(scalars, scalars)
    def test_addition_commutative(self, a, b):
        assert G * a + G * b == G * b + G * a

    def test_zero_scalar(self):
        assert (G * 0).is_infinity()

    def test_subtraction(self):
        assert G * 5 - G * 3 == G * 2


class TestPointBehaviour:
    def test_immutability(self):
        with pytest.raises(AttributeError):
            G.x = None

    def test_cross_curve_rejected(self):
        other = get_params("SS256")
        with pytest.raises(ValueError):
            G + other.generator

    def test_equality_with_non_point(self):
        assert (G == 42) is False
        assert G != 42

    def test_hash_consistency(self):
        assert hash(G * 3) == hash(G * 3)
        assert hash(CURVE.infinity()) == hash(CURVE.infinity())

    def test_repr(self):
        assert "infinity" in repr(CURVE.infinity())
        assert "Point" in repr(G)

    def test_mul_type_error(self):
        with pytest.raises(TypeError):
            G * 1.5
