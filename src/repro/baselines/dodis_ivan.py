"""The Dodis--Ivan (NDSS'03) secret-splitting proxy construction (ElGamal).

The delegator splits his secret ``a`` into ``a1 + a2 = a (mod q)``, hands
``a1`` to the proxy and ``a2`` to the delegatee.  The proxy *partially
decrypts* (rather than transforms) the ciphertext, and the delegatee
finishes with ``a2``.  The two documented disadvantages reproduced here:

* **not collusion-safe** — proxy and delegatee add their shares and recover
  ``a`` (:meth:`collusion_recover_secret`);
* **key dedication** — the delegatee's share is specific to the delegator;
  in the key-pair variant the delegatee's own key pair becomes usable by
  the delegator.  We model the share-based variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.elgamal import ElGamal, ElGamalCiphertext, ElGamalKeyPair
from repro.ec.curve import Point
from repro.math.drbg import RandomSource, system_random
from repro.pairing.group import PairingGroup

__all__ = ["DodisIvanScheme", "SecretShares", "PartiallyDecrypted"]


@dataclass(frozen=True)
class SecretShares:
    """The two additive shares of the delegator's secret."""

    proxy_share: int
    delegatee_share: int


@dataclass(frozen=True)
class PartiallyDecrypted:
    """A ciphertext after the proxy removed its share of the mask."""

    c1: Point
    c2: Point


class DodisIvanScheme:
    """Dodis--Ivan proxy cryptography via additive secret splitting."""

    def __init__(self, group: PairingGroup):
        self.group = group
        self._elgamal = ElGamal(group)

    def keygen(self, rng: RandomSource | None = None) -> ElGamalKeyPair:
        return self._elgamal.keygen(rng)

    def split(self, secret: int, rng: RandomSource | None = None) -> SecretShares:
        """Split ``a = a1 + a2`` uniformly."""
        rng = rng or system_random()
        a1 = self.group.random_scalar(rng)
        a2 = (secret - a1) % self.group.order
        return SecretShares(proxy_share=a1, delegatee_share=a2)

    def encrypt(
        self, public: Point, message: Point, rng: RandomSource | None = None
    ) -> ElGamalCiphertext:
        return self._elgamal.encrypt(public, message, rng)

    def decrypt(self, ciphertext: ElGamalCiphertext, secret: int) -> Point:
        return self._elgamal.decrypt(ciphertext, secret)

    def proxy_transform(
        self, ciphertext: ElGamalCiphertext, proxy_share: int
    ) -> PartiallyDecrypted:
        """Remove the proxy's half of the mask: ``c2 - a1 * c1``."""
        partial = self.group.g1_add(
            ciphertext.c2, self.group.g1_neg(self.group.g1_mul(ciphertext.c1, proxy_share))
        )
        return PartiallyDecrypted(c1=ciphertext.c1, c2=partial)

    def delegatee_decrypt(self, partial: PartiallyDecrypted, delegatee_share: int) -> Point:
        """Finish with the delegatee's share: ``m = c2 - a2 * c1``."""
        return self.group.g1_add(
            partial.c2, self.group.g1_neg(self.group.g1_mul(partial.c1, delegatee_share))
        )

    @staticmethod
    def collusion_recover_secret(shares: SecretShares, order: int) -> int:
        """Proxy + delegatee trivially reassemble the delegator's secret."""
        return (shares.proxy_share + shares.delegatee_share) % order
