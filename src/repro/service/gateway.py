"""The gateway: a typed request/response front door over a shard fleet.

One :class:`ReEncryptionGateway` owns N :class:`~repro.core.proxy.ProxyService`
shards, a consistent-hash :class:`~repro.service.router.ShardRouter`, two
LRU caches and a metrics accumulator.  Callers speak the four request
types (:class:`GrantRequest`, :class:`RevokeRequest`,
:class:`ReEncryptRequest`, :class:`FetchRequest`); every admission passes
a per-tenant token-bucket rate limiter and lands in a bounded audit log.

Failures are a closed taxonomy rooted at :class:`GatewayError`, each with
a stable ``code`` string, so callers (and the audit log) never depend on
library-internal exception types leaking through.

The gateway is scheme-agnostic: it speaks the
:class:`~repro.core.api.PreBackend` lifecycle, so the same shard fleet
serves the paper's scheme or any other registered backend (``afgh/v1``,
``green-ateniese/v1``, ...).

Cache soundness: result replay is only sound for backends whose
capabilities declare ``deterministic_reencrypt`` — the KEM-result cache
is bypassed entirely otherwise — and only while the installed key is the
one that produced them.  Grants and revokes therefore invalidate both caches
for the affected delegation *after* mutating the shard, under the shard
lock — and every cache *write* also happens under the owning shard's
lock, so a racing transformation can never re-populate an entry after
the invalidation that was meant to kill it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.core.api import PreBackend, resolve_backend
from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.core.proxy import (
    DEFAULT_MAX_LOG_ENTRIES,
    NoProxyKeyError,
    ProxyKeyTable,
    ProxyService,
)
from repro.core.scheme import TypeAndIdentityPre
from repro.phr.store import EntryNotFoundError, StoredRecord
from repro.service.batch import BatchItemError, ReEncryptBatcher
from repro.service.cache import CacheStats, LruCache
from repro.service.metrics import GatewayMetrics, MetricsSnapshot
from repro.service.persistence import DurableProxyKeyTable
from repro.service.pool import ShardPool
from repro.service.router import ShardRouter
from repro.service.telemetry import EventLog, TraceContext, Tracer

__all__ = [
    "GatewayError",
    "RateLimitedError",
    "DelegationNotFoundError",
    "EntryMissingError",
    "InvalidRequestError",
    "StoreUnavailableError",
    "QuotaExceededError",
    "TokenBucket",
    "GrantRequest",
    "GrantResponse",
    "RevokeRequest",
    "RevokeResponse",
    "ReEncryptRequest",
    "ReEncryptResponse",
    "FetchRequest",
    "FetchResponse",
    "AuditEvent",
    "ResizeReport",
    "ReEncryptionGateway",
]


# --------------------------------------------------------------- error taxonomy


class GatewayError(Exception):
    """Base of every error the gateway raises; ``code`` is wire-stable."""

    code = "gateway-error"


class RateLimitedError(GatewayError):
    """The tenant exhausted its token bucket."""

    code = "rate-limited"


class DelegationNotFoundError(GatewayError):
    """No proxy key exists for the requested (delegator, delegatee, type)."""

    code = "no-delegation"


class EntryMissingError(GatewayError):
    """A fetch named a (patient, entry) the store does not hold."""

    code = "entry-not-found"


class InvalidRequestError(GatewayError):
    """The request is structurally unusable (empty batch, bad fields)."""

    code = "invalid-request"


class StoreUnavailableError(GatewayError):
    """A fetch arrived but the gateway was built without a PHR store."""

    code = "no-store"


class QuotaExceededError(GatewayError):
    """The tenant spent its configured total-request quota."""

    code = "quota-exceeded"


# ------------------------------------------------------------------ rate limit


class TokenBucket:
    """Per-tenant token buckets: ``rate_per_s`` refill up to ``burst``.

    The clock is injectable so tests advance time explicitly instead of
    sleeping; omitting it selects ``time.monotonic`` for production use.
    A denied request still banks the refill accrued since the last call,
    so fractional refills accumulate instead of being thrown away.
    Thread-safe: admission may race across shard-pool workers.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] | None = None,
    ):
        if rate_per_s <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._buckets: dict[str, tuple[float, float]] = {}  # tenant -> (tokens, stamp)

    def allow(self, tenant: str, cost: float = 1.0) -> bool:
        with self._lock:
            now = self._clock()
            tokens, stamp = self._buckets.get(tenant, (self.burst, now))
            tokens = min(self.burst, tokens + (now - stamp) * self.rate_per_s)
            if tokens < cost:
                self._buckets[tenant] = (tokens, now)
                return False
            self._buckets[tenant] = (tokens - cost, now)
            return True

    def available(self, tenant: str) -> float:
        """Tokens the tenant could spend right now (refill applied, no spend)."""
        with self._lock:
            now = self._clock()
            tokens, stamp = self._buckets.get(tenant, (self.burst, now))
            return min(self.burst, tokens + (now - stamp) * self.rate_per_s)


# ------------------------------------------------------------------- requests


@dataclass(frozen=True)
class GrantRequest:
    """Install a proxy key (the delegator ran ``Pextract`` out of band)."""

    tenant: str
    proxy_key: ProxyKey


@dataclass(frozen=True)
class GrantResponse:
    shard: str


@dataclass(frozen=True)
class RevokeRequest:
    tenant: str
    delegator_domain: str
    delegator: str
    delegatee_domain: str
    delegatee: str
    type_label: str
    # Client-generated idempotency id: a wire server deduplicates
    # retried revokes carrying the same id, so a connection drop never
    # loses the outcome.  In-process callers leave it None.
    request_id: str | None = None


@dataclass(frozen=True)
class RevokeResponse:
    shard: str
    removed: bool


@dataclass(frozen=True)
class ReEncryptRequest:
    tenant: str
    ciphertext: TypedCiphertext
    delegatee_domain: str
    delegatee: str


@dataclass(frozen=True)
class ReEncryptResponse:
    ciphertext: ReEncryptedCiphertext
    shard: str
    cache_hit: bool


@dataclass(frozen=True)
class FetchRequest:
    """Read stored ciphertext blobs (one entry, or a patient/category scan)."""

    tenant: str
    patient: str
    entry_id: str | None = None
    category: str | None = None


@dataclass(frozen=True)
class FetchResponse:
    records: tuple[StoredRecord, ...]


@dataclass(frozen=True)
class ResizeReport:
    """What one fleet resize did: the migration, measured."""

    old_shard_count: int
    new_shard_count: int
    keys_moved: int
    shards_added: tuple[str, ...]
    shards_removed: tuple[str, ...]
    elapsed_ms: float


@dataclass(frozen=True)
class AuditEvent:
    """One admitted-or-refused request, as the bounded audit log records it."""

    sequence: int
    tenant: str
    action: str
    outcome: str  # "ok" or an error code
    detail: str


# -------------------------------------------------------------------- gateway


@dataclass
class ReEncryptionGateway:
    """N proxy shards behind routing, caching, batching and rate limiting.

    Elasticity and durability (both optional, both off by default):

    * ``workers > 0`` attaches a :class:`~repro.service.pool.ShardPool`
      thread pool, and batches execute their per-delegation groups
      concurrently across shards — per-shard locks keep every shard's
      table and log single-writer, so results stay bit-identical to
      sequential execution.
    * ``state_dir`` backs every shard's key table with a
      :class:`~repro.service.persistence.DurableProxyKeyTable` append
      log under that directory, named ``<shard>.log``.  Opening a state
      dir adopts logs left by a *different* fleet size (or a crash
      mid-resize) and re-homes every key onto the shard the current
      router owns it with, so no delegation is ever lost to a restart.
    * :meth:`resize` rebalances a live fleet, migrating exactly the keys
      whose consistent-hash owner changed.
    """

    # The paper's raw scheme (historical spelling) or any registered
    # PreBackend — the whole service stack runs on the backend API.
    scheme: TypeAndIdentityPre | PreBackend
    shard_count: int = 4
    store: object | None = None  # EncryptedPhrStore | FilePhrStore (duck-typed)
    rate_per_s: float | None = None  # None disables rate limiting
    burst: float | None = None  # defaults to 2 * rate_per_s
    key_cache_size: int = 256
    result_cache_size: int = 1024
    max_audit_entries: int = 10_000
    max_shard_log_entries: int = DEFAULT_MAX_LOG_ENTRIES
    clock: Callable[[], float] = time.monotonic
    workers: int = 0  # 0 = sequential batch execution
    state_dir: str | Path | None = None  # None = in-memory key tables
    fsync: bool = False  # fsync every durable append (slow, strongest)
    # Custom shard construction, e.g. a benchmark modelling remote-shard
    # latency; receives (name, durable_table_or_None).
    shard_factory: Callable[[str, object | None], ProxyService] | None = None
    # Telemetry (PR 6): ``telemetry=False`` disables span recording and
    # event emission entirely (the bench_e14 baseline); otherwise a
    # bounded Tracer ring and EventLog are created unless injected.
    telemetry: bool = True
    tracer: Tracer | None = None
    event_log: EventLog | None = None
    # Per-tenant admission policy (duck-typed
    # :class:`repro.service.auth.policy.PolicyEngine`; the auth package
    # imports this module, so the reverse import stays structural-only).
    # ``admit(tenant, op, cost)`` returning True replaces the global
    # limiter for that tenant; False falls through to it.
    policy: object | None = None
    backend: PreBackend = field(init=False, repr=False)
    _shards: dict[str, ProxyService] = field(init=False)
    _router: ShardRouter = field(init=False)
    _pool: ShardPool = field(init=False)
    _key_cache: LruCache = field(init=False)
    _result_cache: LruCache = field(init=False)
    _limiter: TokenBucket | None = field(init=False)
    _audit: deque = field(init=False)
    _audit_lock: threading.Lock = field(init=False, repr=False)
    _audit_sequence: int = field(init=False, default=0)
    metrics: GatewayMetrics = field(init=False)

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError("shard_count must be positive")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        self.backend = resolve_backend(self.scheme)
        # Replaying a cached transformation is only sound when the
        # scheme's re-encryption is a pure function of (ciphertext, key).
        self._cache_results = self.backend.capabilities.deterministic_reencrypt
        names = ["shard-%02d" % i for i in range(self.shard_count)]
        self._router = ShardRouter(names)
        self._pool = ShardPool(names, workers=self.workers)
        self._shards = {name: self._make_shard(name) for name in names}
        self._key_cache = LruCache(self.key_cache_size, name="key_cache")
        self._result_cache = LruCache(self.result_cache_size, name="result_cache")
        self._audit = deque(maxlen=self.max_audit_entries)
        self._audit_lock = threading.Lock()
        self.metrics = GatewayMetrics(clock=self.clock)
        if self.telemetry:
            if self.tracer is None:
                self.tracer = Tracer(clock=self.clock)
            if self.event_log is None:
                self.event_log = EventLog()
        else:
            self.tracer = None
            self.event_log = None
        self._limiter = None
        self.set_rate_limit(self.rate_per_s, self.burst)
        if self.state_dir is not None:
            self._adopt_orphan_logs()
            self._rehome_misrouted_keys()

    def _make_shard(self, name: str) -> ProxyService:
        table: DurableProxyKeyTable | None = None
        if self.state_dir is not None:
            state_dir = Path(self.state_dir)
            state_dir.mkdir(parents=True, exist_ok=True)
            table = DurableProxyKeyTable(
                state_dir / ("%s.log" % name), self.backend, fsync=self.fsync
            )
        if self.shard_factory is not None:
            return self.shard_factory(name, table)
        return ProxyService(
            self.backend,
            name=name,
            max_log_entries=self.max_shard_log_entries,
            table=table if table is not None else ProxyKeyTable(),
        )

    def _adopt_orphan_logs(self) -> None:
        """Absorb key logs written under a different fleet size.

        A state dir may hold logs for shards that no longer exist — the
        process was restarted with a different ``shard_count``, or died
        between a resize's install and delete.  Their keys are installed
        onto the shards the *current* router owns them with, then the
        orphan file is removed; re-installing a key that already migrated
        is idempotent, so this is crash-safe to repeat.
        """
        for path in sorted(Path(self.state_dir).glob("*.log")):
            if path.stem in self._shards:
                continue
            orphan = DurableProxyKeyTable(path, self.backend)
            for key in list(orphan):
                owner = self._router.shard_for(
                    key.delegator_domain, key.delegator, key.type_label
                )
                self._shards[owner].install_key(key)
            orphan.delete()

    def _migrate_keys(self, router: ShardRouter) -> int:
        """Move every key to the shard ``router`` owns it with; returns count.

        Install-before-revoke on every move: with durable tables a crash
        mid-sweep leaves a key in both logs, which the next open repairs
        (re-homing is idempotent) — never in neither.  Callers must hold
        the whole fleet (construction, or ``lock_all``).
        """
        moved = 0
        for name, shard in list(self._shards.items()):
            doomed = []
            for key in list(shard.table):
                owner = router.shard_for(
                    key.delegator_domain, key.delegator, key.type_label
                )
                if owner != name:
                    self._shards[owner].install_key(key)
                    doomed.append(ProxyKeyTable.index_of(key))
            for index in doomed:
                shard.table.revoke(index)
            moved += len(doomed)
        return moved

    def _rehome_misrouted_keys(self) -> int:
        """Move any loaded key not owned by its shard to the right one."""
        return self._migrate_keys(self._router)

    # ------------------------------------------------------------- internals

    def set_rate_limit(self, rate_per_s: float | None, burst: float | None = None) -> None:
        """Install, replace or (with ``None``) remove the per-tenant limiter.

        Existing bucket state is discarded — an admin retuning the limit
        grants every tenant a fresh burst.
        """
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._limiter = (
            TokenBucket(
                rate_per_s,
                burst if burst is not None else 2 * rate_per_s,
                self.clock,
            )
            if rate_per_s is not None
            else None
        )

    @property
    def scheme_id(self) -> str:
        """The hosted backend's wire- and disk-stable scheme id."""
        return self.backend.scheme_id

    def shard_named(self, name: str) -> ProxyService:
        return self._shards[name]

    @property
    def shard_names(self) -> list[str]:
        return self._router.shards

    def _route(self, delegator_domain: str, delegator: str, type_label: str) -> str:
        return self._router.shard_for(delegator_domain, delegator, type_label)

    @contextmanager
    def _owned_shard(
        self,
        delegator_domain: str,
        delegator: str,
        type_label: str,
        tenant: str | None = None,
    ) -> Iterator[tuple[str, ProxyService]]:
        """Lock and yield the shard that owns a route key — resize-proof.

        Routing happens before the lock is taken, so a concurrent
        :meth:`resize` can move ownership in between; the loop re-checks
        the assignment *under* the lock and retries until route and lock
        agree.  Only one shard lock is ever held at a time, which keeps
        the lock order compatible with resize's sorted whole-fleet sweep.

        With ``tenant`` the time spent waiting for the lock lands in the
        per-tenant queue-time histogram — the fairness signal that shows
        one hot tenant making everyone else wait.
        """
        queued_at = self.clock() if tenant is not None else 0.0
        while True:
            name = self._route(delegator_domain, delegator, type_label)
            lock = self._pool.lock_object(name)
            if lock is None:
                continue  # shard retired between route and lock; re-route
            with lock:
                if (
                    # A retire-then-re-add pair of resizes replaces the
                    # lock object; holding the orphaned one is not mutual
                    # exclusion, so insist we hold the *current* lock.
                    self._pool.lock_object(name) is lock
                    and name in self._shards
                    and self._route(delegator_domain, delegator, type_label) == name
                ):
                    if tenant is not None:
                        self.metrics.observe_queue(
                            tenant, (self.clock() - queued_at) * 1000
                        )
                    yield name, self._shards[name]
                    return

    def _span(self, trace: TraceContext | None, name: str, **attributes):
        """A tracer span context manager, or a no-op when tracing is off.

        Usable on any request path: in-process callers that never pass a
        trace context (and gateways built with ``telemetry=False``) pay
        one ``None`` check, nothing more.
        """
        if self.tracer is None or trace is None:
            return nullcontext(None)
        return self.tracer.span(trace, name, attributes or None)

    def _record_audit(
        self,
        tenant: str,
        action: str,
        outcome: str,
        detail: str,
        trace: TraceContext | None = None,
        latency_ms: float | None = None,
        shard: str | None = None,
    ) -> None:
        with self._audit_lock:
            self._audit.append(
                AuditEvent(
                    sequence=self._audit_sequence,
                    tenant=tenant,
                    action=action,
                    outcome=outcome,
                    detail=detail,
                )
            )
            self._audit_sequence += 1
        if self.event_log is not None:
            self.event_log.emit(
                "audit",
                scheme=self.scheme_id,
                tenant=tenant,
                action=action,
                outcome=outcome,
                shard=shard,
                latency_ms=latency_ms,
                trace=trace.trace_id if trace is not None else None,
                detail=detail or None,
            )

    def _admit(
        self,
        tenant: str,
        action: str,
        cost: float = 1.0,
        trace: TraceContext | None = None,
    ) -> None:
        with self._span(trace, "admission", tenant=tenant, op=action) as span:
            if self.policy is not None:
                try:
                    if self.policy.admit(tenant, action, cost):
                        return  # tenant-specific limits admitted the request
                except GatewayError as error:
                    if span is not None:
                        span.status = error.code
                    self.metrics.observe_rejection(
                        rate_limited=isinstance(error, RateLimitedError),
                        op=action,
                        tenant=tenant,
                        code=error.code,
                    )
                    self._record_audit(
                        tenant, action, error.code, "cost=%g" % cost, trace=trace
                    )
                    raise
            if self._limiter is not None and not self._limiter.allow(tenant, cost):
                if span is not None:
                    span.status = RateLimitedError.code
                self.metrics.observe_rejection(
                    rate_limited=True, op=action, tenant=tenant, code=RateLimitedError.code
                )
                self._record_audit(
                    tenant, action, RateLimitedError.code, "cost=%g" % cost, trace=trace
                )
                raise RateLimitedError(
                    "tenant %r exceeded %g req/s" % (tenant, self.rate_per_s)
                )

    def _resolve_key(
        self, index: tuple[str, str, str, str, str], shard: ProxyService
    ) -> ProxyKey:
        """Key-cache-backed table lookup; misses fall through to the shard."""
        key = self._key_cache.get(index)
        if key is None:
            key = shard.table.get(index)
            if key is None:
                raise NoProxyKeyError(
                    "no proxy key for delegator=%r delegatee=%r type=%r"
                    % (index[1], index[3], index[4])
                )
            self._key_cache.put(index, key)
        return key

    def _invalidate_delegation(self, index: tuple[str, str, str, str, str]) -> None:
        delegator_domain, delegator, delegatee_domain, delegatee, type_label = index
        self._key_cache.invalidate(index)
        self._result_cache.invalidate_where(
            lambda key: (
                key[0].domain == delegator_domain
                and key[0].identity == delegator
                and key[0].type_label == type_label
                and key[1] == delegatee_domain
                and key[2] == delegatee
            )
        )

    # ------------------------------------------------------------ operations

    def grant(
        self, request: GrantRequest, trace: TraceContext | None = None
    ) -> GrantResponse:
        """Install a proxy key on the shard that owns its delegator/type."""
        self._admit(request.tenant, "grant", trace=trace)
        start = self.clock()
        key = request.proxy_key
        with self._span(trace, "route") as span:
            route = self._route(key.delegator_domain, key.delegator, key.type_label)
            if span is not None:
                span.set("shard", route)
        with self._span(trace, "shard-install") as span:
            with self._owned_shard(
                key.delegator_domain, key.delegator, key.type_label, tenant=request.tenant
            ) as (shard_name, shard):
                shard.install_key(key)
                # Invalidate under the lock, after the install: cache writes
                # also hold the lock, so nothing stale can sneak back in.
                self._invalidate_delegation(ProxyKeyTable.index_of(key))
            if span is not None:
                span.set("shard", shard_name)
        latency_ms = (self.clock() - start) * 1000
        self.metrics.observe("grant", latency_ms, shard_name, tenant=request.tenant)
        self._record_audit(
            request.tenant,
            "grant",
            "ok",
            "%s->%s type=%s shard=%s" % (key.delegator, key.delegatee, key.type_label, shard_name),
            trace=trace,
            latency_ms=latency_ms,
            shard=shard_name,
        )
        return GrantResponse(shard=shard_name)

    def revoke(
        self, request: RevokeRequest, trace: TraceContext | None = None
    ) -> RevokeResponse:
        """Remove a delegation everywhere: shard table and both caches."""
        self._admit(request.tenant, "revoke", trace=trace)
        start = self.clock()
        index: tuple[str, str, str, str, str] = (
            request.delegator_domain,
            request.delegator,
            request.delegatee_domain,
            request.delegatee,
            request.type_label,
        )
        with self._span(trace, "shard-revoke") as span:
            with self._owned_shard(
                request.delegator_domain,
                request.delegator,
                request.type_label,
                tenant=request.tenant,
            ) as (shard_name, shard):
                removed = shard.revoke_key(*index)
                self._invalidate_delegation(index)
            if span is not None:
                span.set("shard", shard_name)
                span.set("removed", removed)
        latency_ms = (self.clock() - start) * 1000
        self.metrics.observe("revoke", latency_ms, shard_name, tenant=request.tenant)
        self._record_audit(
            request.tenant,
            "revoke",
            "ok",
            "%s->%s type=%s removed=%s"
            % (request.delegator, request.delegatee, request.type_label, removed),
            trace=trace,
            latency_ms=latency_ms,
            shard=shard_name,
        )
        return RevokeResponse(shard=shard_name, removed=removed)

    def reencrypt(
        self, request: ReEncryptRequest, trace: TraceContext | None = None
    ) -> ReEncryptResponse:
        """Transform one ciphertext, consulting both caches."""
        self._admit(request.tenant, "reencrypt", trace=trace)
        start = self.clock()
        ciphertext = request.ciphertext
        result_key = (ciphertext, request.delegatee_domain, request.delegatee)
        with self._span(trace, "cache-lookup") as span:
            cached = self._result_cache.get(result_key) if self._cache_results else None
            if span is not None:
                span.set("hit", cached is not None)
        if cached is not None:
            with self._span(trace, "route") as span:
                shard_name = self._route(
                    ciphertext.domain, ciphertext.identity, ciphertext.type_label
                )
                if span is not None:
                    span.set("shard", shard_name)
            latency_ms = (self.clock() - start) * 1000
            self.metrics.observe(
                "reencrypt", latency_ms, shard_name, tenant=request.tenant
            )
            self._record_audit(
                request.tenant,
                "reencrypt",
                "ok",
                "cache-hit shard=%s" % shard_name,
                trace=trace,
                latency_ms=latency_ms,
                shard=shard_name,
            )
            return ReEncryptResponse(ciphertext=cached, shard=shard_name, cache_hit=True)
        index = ProxyKeyTable.request_index(
            ciphertext, request.delegatee_domain, request.delegatee
        )
        with self._span(trace, "route") as span:
            route = self._route(
                ciphertext.domain, ciphertext.identity, ciphertext.type_label
            )
            if span is not None:
                span.set("shard", route)
        with self._span(trace, "shard-crypto") as span:
            with self._owned_shard(
                ciphertext.domain,
                ciphertext.identity,
                ciphertext.type_label,
                tenant=request.tenant,
            ) as (shard_name, shard):
                if span is not None:
                    span.set("shard", shard_name)
                try:
                    key = self._resolve_key(index, shard)
                except NoProxyKeyError as error:
                    self.metrics.observe_rejection(
                        op="reencrypt",
                        tenant=request.tenant,
                        code=DelegationNotFoundError.code,
                    )
                    self._record_audit(
                        request.tenant,
                        "reencrypt",
                        DelegationNotFoundError.code,
                        str(error),
                        trace=trace,
                    )
                    raise DelegationNotFoundError(str(error)) from error
                result = shard.reencrypt_with_key(ciphertext, key)
                if self._cache_results:
                    self._result_cache.put(result_key, result)
        latency_ms = (self.clock() - start) * 1000
        self.metrics.observe("reencrypt", latency_ms, shard_name, tenant=request.tenant)
        self._record_audit(
            request.tenant,
            "reencrypt",
            "ok",
            "shard=%s" % shard_name,
            trace=trace,
            latency_ms=latency_ms,
            shard=shard_name,
        )
        return ReEncryptResponse(ciphertext=result, shard=shard_name, cache_hit=False)

    def reencrypt_batch(
        self,
        requests: Sequence[ReEncryptRequest],
        trace: TraceContext | None = None,
    ) -> list[ReEncryptResponse]:
        """Transform a batch; key lookups are amortized per delegation group.

        Produces bit-identical ciphertexts to issuing the requests one by
        one (``Preenc`` is deterministic), in submission order — with or
        without workers.  Execution is two-phase: every group's
        delegation is checked first (so a missing delegation aborts
        before any side effects), then each group's transformations run
        as one shard-pool task that resolves its key *under the shard
        lock* — a grant or revoke racing the batch is therefore either
        fully before or fully after each group, never interleaved with
        it.  Groups never share a delegation, and same-shard groups
        serialize on the shard lock, so concurrency cannot reorder what
        any single shard observes.
        """
        if not requests:
            raise InvalidRequestError("empty batch")
        if self.policy is not None:
            limit = self.policy.max_batch(requests[0].tenant)
            if limit is not None and len(requests) > limit:
                self.metrics.observe_rejection(
                    op="reencrypt-batch",
                    tenant=requests[0].tenant,
                    code=InvalidRequestError.code,
                )
                self._record_audit(
                    requests[0].tenant,
                    "reencrypt-batch",
                    InvalidRequestError.code,
                    "batch=%d max=%d" % (len(requests), limit),
                    trace=trace,
                )
                raise InvalidRequestError(
                    "batch of %d exceeds tenant %r max batch size %d"
                    % (len(requests), requests[0].tenant, limit)
                )
        with self._span(trace, "admission", items=len(requests)):
            for request in requests:
                self._admit(request.tenant, "reencrypt-batch")
        start = self.clock()
        items = [
            (request.ciphertext, request.delegatee_domain, request.delegatee)
            for request in requests
        ]
        groups = ReEncryptBatcher.group(items)

        def check_delegation(group_key: tuple[str, str, str, str, str]) -> ProxyKey:
            """Existence guard: lock-free on the hit path, locked on a miss.

            A lock-free read can miss a key that a resize is migrating
            (revoked from the old owner, router not yet swapped), so a
            miss is only authoritative after re-reading under the owning
            shard's lock — which queues behind any in-flight resize.
            Deliberately does not touch the key cache: cache writes only
            happen under a shard lock, in the group task below.
            """
            shard = self._shards.get(
                self._route(group_key[0], group_key[1], group_key[4])
            )
            if shard is not None:
                key = shard.table.get(group_key)
                if key is not None:
                    return key
            with self._owned_shard(
                group_key[0], group_key[1], group_key[4]
            ) as (_name, owned):
                key = owned.table.get(group_key)
                if key is None:
                    raise NoProxyKeyError(
                        "no proxy key for delegator=%r delegatee=%r type=%r"
                        % (group_key[1], group_key[3], group_key[4])
                    )
                return key

        results: list[ReEncryptedCiphertext | None] = [None] * len(items)
        hit_flags = [False] * len(items)
        shard_names = [""] * len(items)

        def group_task(group) -> Callable[[], None]:
            def run() -> None:
                with self._owned_shard(
                    group.group_key[0],
                    group.group_key[1],
                    group.group_key[4],
                    tenant=requests[group.positions[0]].tenant,
                ) as (shard_name, shard):
                    try:
                        key = self._resolve_key(group.group_key, shard)
                    except NoProxyKeyError as error:
                        # Revoked between the guard and this task.
                        raise BatchItemError(group.positions[0], error) from error
                    miss_positions: list[int] = []
                    miss_ciphertexts = []
                    miss_keys = []
                    pending: dict = {}
                    duplicates: list[tuple[int, int]] = []
                    for position, ciphertext in zip(group.positions, group.ciphertexts):
                        shard_names[position] = shard_name
                        result_key = (ciphertext, key.delegatee_domain, key.delegatee)
                        cached = (
                            self._result_cache.get(result_key)
                            if self._cache_results
                            else None
                        )
                        if cached is not None:
                            hit_flags[position] = True
                            results[position] = cached
                            continue
                        if self._cache_results and result_key in pending:
                            # Duplicate within this batch: served by the first
                            # occurrence's computation, reported as a hit
                            # (matching the per-item loop's put-then-get order).
                            hit_flags[position] = True
                            duplicates.append((position, pending[result_key]))
                            continue
                        if self._cache_results:
                            pending[result_key] = len(miss_positions)
                        miss_positions.append(position)
                        miss_ciphertexts.append(ciphertext)
                        miss_keys.append(result_key)
                    if not miss_positions:
                        return
                    # One batched transformation for the whole group: the
                    # backend amortises the pairing precomputation across
                    # every ciphertext sharing this proxy key.
                    try:
                        transformed = shard.reencrypt_many_with_key(miss_ciphertexts, key)
                    except Exception:  # noqa: BLE001 - replayed for attribution
                        # The batch failed as a unit; replay item-by-item so
                        # the error is pinned to a position (the ops are
                        # deterministic, so survivors produce the same
                        # results the batch would have).
                        transformed = []
                        for position, ciphertext in zip(miss_positions, miss_ciphertexts):
                            try:
                                transformed.append(
                                    shard.reencrypt_with_key(ciphertext, key)
                                )
                            except Exception as error:  # noqa: BLE001 - rewrapped
                                raise BatchItemError(position, error) from error
                    for position, result_key, result in zip(
                        miss_positions, miss_keys, transformed
                    ):
                        results[position] = result
                        if self._cache_results:
                            self._result_cache.put(result_key, result)
                    for position, miss_index in duplicates:
                        results[position] = transformed[miss_index]

            return run

        try:
            with self._span(trace, "delegation-check", groups=len(groups)):
                ReEncryptBatcher.resolve_all(groups, check_delegation)
            with self._span(trace, "shard-crypto", groups=len(groups)):
                self._pool.run_many([(None, group_task(group)) for group in groups])
        except BatchItemError as error:
            tenant = requests[error.position].tenant
            if isinstance(error.cause, NoProxyKeyError):
                self.metrics.observe_rejection(
                    op="reencrypt-batch",
                    tenant=tenant,
                    code=DelegationNotFoundError.code,
                )
                self._record_audit(
                    tenant,
                    "reencrypt-batch",
                    DelegationNotFoundError.code,
                    str(error.cause),
                    trace=trace,
                )
                raise DelegationNotFoundError(str(error.cause)) from error
            self.metrics.observe_rejection(
                op="reencrypt-batch", tenant=tenant, code=GatewayError.code
            )
            self._record_audit(
                tenant, "reencrypt-batch", GatewayError.code, str(error.cause), trace=trace
            )
            raise GatewayError(str(error.cause)) from error
        elapsed_ms = (self.clock() - start) * 1000
        per_item_ms = elapsed_ms / len(requests)
        for request, shard_name in zip(requests, shard_names):
            self.metrics.observe(
                "reencrypt", per_item_ms, shard_name, tenant=request.tenant
            )
            self._record_audit(
                request.tenant,
                "reencrypt-batch",
                "ok",
                "shard=%s" % shard_name,
                trace=trace,
                latency_ms=per_item_ms,
                shard=shard_name,
            )
        return [
            ReEncryptResponse(ciphertext=result, shard=shard_name, cache_hit=hit)
            for result, shard_name, hit in zip(results, shard_names, hit_flags)
        ]

    def fetch(
        self, request: FetchRequest, trace: TraceContext | None = None
    ) -> FetchResponse:
        """Read ciphertext blobs from the attached PHR store."""
        self._admit(request.tenant, "fetch", trace=trace)
        if self.store is None:
            self.metrics.observe_rejection(
                op="fetch", tenant=request.tenant, code=StoreUnavailableError.code
            )
            self._record_audit(
                request.tenant, "fetch", StoreUnavailableError.code, "", trace=trace
            )
            raise StoreUnavailableError("gateway has no PHR store attached")
        start = self.clock()
        try:
            with self._span(trace, "store-read", patient=request.patient):
                if request.entry_id is not None:
                    records = (self.store.get(request.patient, request.entry_id),)
                else:
                    records = tuple(
                        self.store.entries_for(request.patient, request.category)
                    )
        except EntryNotFoundError as error:
            self.metrics.observe_rejection(
                op="fetch", tenant=request.tenant, code=EntryMissingError.code
            )
            self._record_audit(
                request.tenant, "fetch", EntryMissingError.code, str(error), trace=trace
            )
            raise EntryMissingError(str(error)) from error
        latency_ms = (self.clock() - start) * 1000
        self.metrics.observe("fetch", latency_ms, tenant=request.tenant)
        self._record_audit(
            request.tenant,
            "fetch",
            "ok",
            "patient=%s n=%d" % (request.patient, len(records)),
            trace=trace,
            latency_ms=latency_ms,
        )
        return FetchResponse(records=records)

    # ------------------------------------------------------------- elasticity

    def resize(
        self,
        shard_count: int,
        tenant: str = "admin",
        trace: TraceContext | None = None,
    ) -> ResizeReport:
        """Rebalance the fleet to ``shard_count`` shards, migrating keys.

        Consistent hashing keeps the migration minimal: only keys whose
        route triple changes owner move.  The whole fleet is locked for
        the duration (concurrent requests queue on the shard locks), and
        every key is installed on its new shard *before* being revoked
        from the old one — with durable tables, a crash mid-migration
        leaves the key in both logs and :meth:`_adopt_orphan_logs` /
        :meth:`_rehome_misrouted_keys` repair the split on next open.
        Zero delegations are lost in either order of events.
        """
        if shard_count < 1:
            raise InvalidRequestError("shard_count must be positive")
        self._admit(tenant, "resize", trace=trace)
        start = self.clock()
        with self._span(trace, "migrate", shard_count=shard_count), self._pool.lock_all():
            old_names = self._router.shards
            new_names = ["shard-%02d" % i for i in range(shard_count)]
            added = tuple(name for name in new_names if name not in self._shards)
            removed = tuple(name for name in old_names if name not in new_names)
            new_router = ShardRouter(new_names)
            for name in added:
                self._shards[name] = self._make_shard(name)
            moved = self._migrate_keys(new_router)
            for name in removed:
                retired = self._shards.pop(name)
                if isinstance(retired.table, DurableProxyKeyTable):
                    retired.table.delete()
            self._router = new_router
            self._pool.set_shards(new_names)
            self.shard_count = shard_count
        elapsed_ms = (self.clock() - start) * 1000
        self.metrics.observe("resize", elapsed_ms, tenant=tenant)
        self.metrics.observe_resize(moved)
        self._record_audit(
            tenant,
            "resize",
            "ok",
            "%d->%d moved=%d added=%d removed=%d"
            % (len(old_names), shard_count, moved, len(added), len(removed)),
            trace=trace,
            latency_ms=elapsed_ms,
        )
        return ResizeReport(
            old_shard_count=len(old_names),
            new_shard_count=shard_count,
            keys_moved=moved,
            shards_added=added,
            shards_removed=removed,
            elapsed_ms=elapsed_ms,
        )

    def close(self) -> None:
        """Stop the worker pool and close every durable shard table.

        Safe to call more than once; the gateway must not be used after.
        """
        self._pool.shutdown()
        with self._pool.lock_all():
            for shard in self._shards.values():
                if isinstance(shard.table, DurableProxyKeyTable):
                    shard.table.close()

    # ---------------------------------------------------------- observability

    @property
    def audit(self) -> list[AuditEvent]:
        """The bounded audit log (copy, oldest first)."""
        return list(self._audit)

    def key_count(self) -> int:
        """Total installed keys across all shards."""
        return sum(shard.key_count() for shard in self._shards.values())

    def list_keys(self) -> list[ProxyKey]:
        """Every installed proxy key, shard order (the wire export surface).

        A point-in-time enumeration, lock-free like the driver's table
        walks: a concurrent grant or revoke may or may not be reflected.
        The fleet tier streams these during resize migration.
        """
        keys: list[ProxyKey] = []
        for name in sorted(self._shards):
            keys.extend(list(self._shards[name].table))
        return keys

    def shard_key_counts(self) -> dict[str, int]:
        return {name: shard.key_count() for name, shard in self._shards.items()}

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot(
            caches={
                "key_cache": self._key_cache.stats(),
                "result_cache": self._result_cache.stats(),
            }
        )

    def cache_stats(self) -> dict[str, CacheStats]:
        return {
            "key_cache": self._key_cache.stats(),
            "result_cache": self._result_cache.stats(),
        }
