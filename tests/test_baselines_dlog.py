"""Tests for the discrete-log baselines: ElGamal, BBS, Dodis--Ivan."""

import pytest

from repro.baselines.bbs import BbsProxyScheme
from repro.baselines.dodis_ivan import DodisIvanScheme
from repro.baselines.elgamal import ElGamal


class TestElGamal:
    def test_round_trip(self, group, rng):
        scheme = ElGamal(group)
        keys = scheme.keygen(rng)
        message = scheme.random_message(rng)
        assert scheme.decrypt(scheme.encrypt(keys.public, message, rng), keys.secret) == message

    def test_wrong_key_fails(self, group, rng):
        scheme = ElGamal(group)
        keys, other = scheme.keygen(rng), scheme.keygen(rng)
        message = scheme.random_message(rng)
        ciphertext = scheme.encrypt(keys.public, message, rng)
        assert scheme.decrypt(ciphertext, other.secret) != message

    def test_randomised(self, group, rng):
        scheme = ElGamal(group)
        keys = scheme.keygen(rng)
        message = scheme.random_message(rng)
        c1 = scheme.encrypt(keys.public, message, rng)
        c2 = scheme.encrypt(keys.public, message, rng)
        assert c1.c1 != c2.c1

    def test_homomorphic_structure(self, group, rng):
        """ElGamal over G1 is additively homomorphic (sanity of substrate)."""
        scheme = ElGamal(group)
        keys = scheme.keygen(rng)
        m1, m2 = scheme.random_message(rng), scheme.random_message(rng)
        c1 = scheme.encrypt(keys.public, m1, rng)
        c2 = scheme.encrypt(keys.public, m2, rng)
        from repro.baselines.elgamal import ElGamalCiphertext

        summed = ElGamalCiphertext(c1=c1.c1 + c2.c1, c2=c1.c2 + c2.c2)
        assert scheme.decrypt(summed, keys.secret) == m1 + m2


class TestBbs:
    def test_owner_round_trip(self, group, rng):
        scheme = BbsProxyScheme(group)
        alice = scheme.keygen(rng)
        message = group.random_g1(rng)
        ciphertext = scheme.encrypt("alice", alice.public, message, rng)
        assert scheme.decrypt(ciphertext, alice.secret) == message

    def test_reencryption_round_trip(self, group, rng):
        scheme = BbsProxyScheme(group)
        alice, bob = scheme.keygen(rng), scheme.keygen(rng)
        message = group.random_g1(rng)
        ciphertext = scheme.encrypt("alice", alice.public, message, rng)
        pi = scheme.rekey(alice.secret, bob.secret)
        transformed = scheme.reencrypt(ciphertext, pi, "bob")
        assert transformed.owner == "bob"
        assert scheme.decrypt(transformed, bob.secret) == message

    def test_bidirectionality(self, group, rng):
        """The documented weakness: pi^-1 converts in the other direction."""
        scheme = BbsProxyScheme(group)
        alice, bob = scheme.keygen(rng), scheme.keygen(rng)
        pi = scheme.rekey(alice.secret, bob.secret)
        message = group.random_g1(rng)
        bob_ciphertext = scheme.encrypt("bob", bob.public, message, rng)
        back = scheme.reencrypt(bob_ciphertext, scheme.invert_rekey(pi), "alice")
        assert scheme.decrypt(back, alice.secret) == message

    def test_collusion_recovers_delegator_secret(self, group, rng):
        scheme = BbsProxyScheme(group)
        alice, bob = scheme.keygen(rng), scheme.keygen(rng)
        pi = scheme.rekey(alice.secret, bob.secret)
        assert scheme.collusion_recover_secret(pi, bob.secret) == alice.secret

    def test_third_party_cannot_decrypt(self, group, rng):
        scheme = BbsProxyScheme(group)
        alice, eve = scheme.keygen(rng), scheme.keygen(rng)
        message = group.random_g1(rng)
        ciphertext = scheme.encrypt("alice", alice.public, message, rng)
        assert scheme.decrypt(ciphertext, eve.secret) != message


class TestDodisIvan:
    def test_owner_round_trip(self, group, rng):
        scheme = DodisIvanScheme(group)
        alice = scheme.keygen(rng)
        message = group.random_g1(rng)
        ciphertext = scheme.encrypt(alice.public, message, rng)
        assert scheme.decrypt(ciphertext, alice.secret) == message

    def test_split_shares_sum_to_secret(self, group, rng):
        scheme = DodisIvanScheme(group)
        alice = scheme.keygen(rng)
        shares = scheme.split(alice.secret, rng)
        assert (shares.proxy_share + shares.delegatee_share) % group.order == alice.secret

    def test_two_step_decryption(self, group, rng):
        scheme = DodisIvanScheme(group)
        alice = scheme.keygen(rng)
        shares = scheme.split(alice.secret, rng)
        message = group.random_g1(rng)
        ciphertext = scheme.encrypt(alice.public, message, rng)
        partial = scheme.proxy_transform(ciphertext, shares.proxy_share)
        assert scheme.delegatee_decrypt(partial, shares.delegatee_share) == message

    def test_proxy_share_alone_insufficient(self, group, rng):
        scheme = DodisIvanScheme(group)
        alice = scheme.keygen(rng)
        shares = scheme.split(alice.secret, rng)
        message = group.random_g1(rng)
        ciphertext = scheme.encrypt(alice.public, message, rng)
        partial = scheme.proxy_transform(ciphertext, shares.proxy_share)
        assert partial.c2 != message  # still masked by the delegatee share

    def test_delegatee_share_alone_insufficient(self, group, rng):
        scheme = DodisIvanScheme(group)
        alice = scheme.keygen(rng)
        shares = scheme.split(alice.secret, rng)
        message = group.random_g1(rng)
        ciphertext = scheme.encrypt(alice.public, message, rng)
        wrong = scheme.proxy_transform(ciphertext, shares.delegatee_share)
        assert scheme.delegatee_decrypt(wrong, shares.delegatee_share) != message

    def test_splits_are_randomised(self, group, rng):
        scheme = DodisIvanScheme(group)
        alice = scheme.keygen(rng)
        s1, s2 = scheme.split(alice.secret, rng), scheme.split(alice.secret, rng)
        assert s1.proxy_share != s2.proxy_share

    def test_collusion(self, group, rng):
        scheme = DodisIvanScheme(group)
        alice = scheme.keygen(rng)
        shares = scheme.split(alice.secret, rng)
        assert scheme.collusion_recover_secret(shares, group.order) == alice.secret
