"""The paper's core contribution: type-and-identity-based proxy re-encryption."""

from repro.core.api import (
    PreBackend,
    SchemeCapabilities,
    SchemeRegistry,
    available_schemes,
    create_backend,
    resolve_backend,
)
from repro.core.ciphertexts import ProxyKey, ReEncryptedCiphertext, TypedCiphertext
from repro.core.epochs import EpochSchedule, ExpiredDelegationError, TemporalPre
from repro.core.proxy import NoProxyKeyError, ProxyService, ReEncryptionLogEntry
from repro.core.scheme import DelegationError, TypeAndIdentityPre, TypeMismatchError

__all__ = [
    "PreBackend",
    "SchemeCapabilities",
    "SchemeRegistry",
    "available_schemes",
    "create_backend",
    "resolve_backend",
    "TypeAndIdentityPre",
    "TypedCiphertext",
    "ProxyKey",
    "ReEncryptedCiphertext",
    "ProxyService",
    "NoProxyKeyError",
    "ReEncryptionLogEntry",
    "TypeMismatchError",
    "DelegationError",
    "EpochSchedule",
    "TemporalPre",
    "ExpiredDelegationError",
]
